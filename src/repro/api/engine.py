"""The campaign engine: (workload x policy) grids, serial or parallel.

:class:`Campaign` is the execution layer behind the public API.  It
runs one simulator backend over a grid of workloads and policies,
memoising per-(policy, workload) results in memory and optionally on
disk, and accumulating the wall-clock / MIPS accounting behind the
paper's Table III and the Section VII-A overhead example.

With ``jobs=1`` (the default) grids run in-process, exactly as the
historical ``SimulationCampaign`` did.  With ``jobs>1`` the pending
cells are fanned out over a :class:`concurrent.futures.
ProcessPoolExecutor`; each worker process constructs its own simulator
(and lazily shares one model builder per process), and the parent
merges worker results in the same order the serial path would have
produced them -- so the resulting :class:`~repro.sim.results.
PopulationResults` is bit-identical to a ``jobs=1`` run, down to its
JSON serialisation.  Every simulation is independent (fresh uncore,
fixed seeds), which is what makes this safe.

Backends declaring ``supports_batch`` (see
:func:`repro.api.backends.backend_supports_batch`) take the *batch*
path instead: per policy, all pending workloads are scored by one
``run_batch`` array call (``jobs=1``) or by ``jobs`` contiguous chunks
on the pool, and the panel streams into the results columnar store via
:meth:`~repro.sim.results.PopulationResults.record_batch`.  Batch rows
are independent, so chunking never changes values and ``jobs=4 ==
jobs=1`` holds here too.

Backends additionally declaring ``supports_policy_axis`` collapse even
the per-policy loop: whenever every requested policy has the same
pending workloads, the whole grid is one ``run_batch_grid`` N x P x K
dispatch (or ``jobs`` row chunks, each scoring all policies), with
each policy's slice bit-identical to its single-policy batch panel.

Campaigns with a ``model_store_dir`` attach a persistent
:class:`~repro.sim.modelstore.ModelStore` to their builder: trained
BADCO node models and analytic calibrations are loaded from disk
instead of retrained, bit-identically, across processes and sessions.

Campaigns with a cache directory persist both the JSON interchange
format and an ``.npz`` twin next to it; loads prefer the npz, which
restores panels as matrices without the per-workload mapping rebuild.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api.backends import (
    SimulatorBackend,
    backend_supports_batch,
    backend_supports_policy_axis,
    get_backend,
)
from repro.api.config import CampaignConfig
from repro.core.workload import Workload
from repro.sim.results import PopulationResults


@dataclass
class CampaignTiming:
    """Wall-clock accounting of a campaign (basis of Table III)."""

    simulations: int = 0
    instructions: int = 0
    wall_seconds: float = 0.0

    @property
    def mips(self) -> float:
        """Simulation speed in million instructions per second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.instructions / 1e6 / self.wall_seconds


# ----------------------------------------------------------------------
# Worker-process plumbing.  Each pool worker holds one backend, one
# config and one lazily-created model builder; simulators are built per
# task (cheap) while builders memoise per-benchmark training (the
# expensive part) for the lifetime of the worker.

_WORKER_STATE: Dict[str, Any] = {}


def _worker_init(backend: SimulatorBackend, config: CampaignConfig,
                 builder: Optional[Any]) -> None:
    _WORKER_STATE["backend"] = backend
    _WORKER_STATE["config"] = config
    _WORKER_STATE["builder"] = builder


def _worker_simulator(policy: str):
    backend: SimulatorBackend = _WORKER_STATE["backend"]
    config: CampaignConfig = _WORKER_STATE["config"]
    builder = _WORKER_STATE["builder"]
    if builder is None:
        builder = backend.make_builder(config.trace_length, config.seed)
        _WORKER_STATE["builder"] = builder
    return backend.make_simulator(
        config.cores, policy, config.trace_length,
        config.warmup_fraction, config.seed, builder=builder)


def _worker_simulate(task: Tuple[str, str]) -> Tuple[str, str, List[float],
                                                     int, float]:
    policy, workload_key = task
    run = _worker_simulator(policy).run(Workload.from_key(workload_key))
    return policy, workload_key, run.ipcs, run.instructions, run.wall_seconds


def _worker_simulate_batch(task: Tuple[str, Tuple[str, ...]]):
    policy, keys = task
    simulator = _worker_simulator(policy)
    run = simulator.run_batch([Workload.from_key(k) for k in keys])
    return policy, keys, run.ipcs, run.instructions, run.wall_seconds


def _worker_simulate_grid(task: Tuple[Tuple[str, ...], Tuple[str, ...]]):
    policies, keys = task
    simulator = _worker_simulator(policies[0])
    run = simulator.run_batch_grid(
        [Workload.from_key(k) for k in keys], policies)
    return keys, run.ipcs, run.instructions, run.wall_seconds


def _pool_context():
    """Fork where available (fast, inherits trained models), else spawn."""
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return get_context("spawn")


# ----------------------------------------------------------------------


class Campaign:
    """Runs workloads under several policies on one simulator backend.

    Args:
        config: the campaign's identity and execution knobs.
        builder: shared model builder (for backends that use one);
            defaults to a fresh one from the backend, trained lazily.
        panel_cache: optional :class:`repro.serve.ResidentPanelCache`
            (duck-typed: ``load(path)`` and ``store(path, results)``).
            When set, cache loads go through it -- mmap'd, LRU'd and
            hit/miss counted -- and saves publish the live results back
            so repeat opens of the same npz skip the disk entirely.
            ``None`` (the default) keeps the one-shot eager-load path.
    """

    def __init__(self, config: CampaignConfig,
                 builder: Optional[Any] = None,
                 panel_cache: Optional[Any] = None) -> None:
        self.config = config
        self.backend = get_backend(config.backend)
        self.builder = (builder if builder is not None
                        else self.backend.make_builder(config.trace_length,
                                                       config.seed))
        if config.model_store_dir is not None:
            from repro.sim.modelstore import attach_store

            attach_store(self.builder, config.model_store_dir)
        self.timing = CampaignTiming()
        self.panel_cache = panel_cache
        self.results = PopulationResults(config.cores, config.backend)
        self._loaded_from_cache = False
        #: Set by every mutation of ``results``; cleared by ``save``.
        #: Lets the serve daemon call ``save`` after every query without
        #: re-serialising an unchanged 10^4-row panel each time.
        self._dirty = False
        if config.cache_path is not None:
            self._try_load()

    # -- convenience views on the config -------------------------------

    @property
    def cores(self) -> int:
        return self.config.cores

    @property
    def trace_length(self) -> int:
        return self.config.trace_length

    @property
    def seed(self) -> int:
        return self.config.seed

    @property
    def warmup_fraction(self) -> float:
        return self.config.warmup_fraction

    @property
    def cache_dir(self):
        return self.config.cache_dir

    # ------------------------------------------------------------------
    # Cache plumbing

    def _try_load(self) -> None:
        path = self.config.cache_path
        npz = self.config.cache_npz_path
        if npz is not None and npz.exists() and not (
                path.exists()
                and path.stat().st_mtime > npz.stat().st_mtime):
            # The fast twin: panels come back as matrices, no mapping
            # rebuild (see PopulationResults.load_npz).  A JSON file
            # newer than the npz (hand-regenerated) wins; a corrupt
            # npz (e.g. a save interrupted mid-write) falls through.
            try:
                if self.panel_cache is not None:
                    self.results = self.panel_cache.load(npz)
                else:
                    self.results = PopulationResults.load_npz(npz)
                self._loaded_from_cache = True
                return
            except Exception:
                pass
        if path.exists():
            self.results = PopulationResults.load(path)
            self._loaded_from_cache = True

    def save(self) -> None:
        """Persist results (no-op without a cache directory).

        Writes the JSON interchange file and its ``.npz`` twin side by
        side; loads prefer the npz.  A clean campaign (nothing recorded
        since the last save or cache load) is a no-op, so warm served
        queries never re-serialise an unchanged panel.

        Writers serialise on a per-cache-key :class:`repro.ioutil.
        FileLock` so two processes filling the same cache entry can't
        interleave their read-modify-write cycles (atomic replaces
        already keep *readers* safe; mmap'd readers keep the replaced
        inode alive and simply see the pre-save snapshot).

        Lock ordering: the campaign-cache lock and the
        :class:`~repro.sim.modelstore.ModelStore` writer lock are never
        held together -- model training (store lock) completes while
        grids run, strictly before results persist (cache lock), and
        nothing under either lock acquires the other.  Any future code
        that needs both must take the store lock first, matching that
        existing order.
        """
        path = self.config.cache_path
        if path is None:
            return
        npz = self.config.cache_npz_path
        if not self._dirty and path.exists() and npz.exists():
            return
        from repro.ioutil import FileLock

        with FileLock(path.parent / f"{self.config.cache_key}.lock"):
            path.parent.mkdir(parents=True, exist_ok=True)
            # JSON first, npz second: the npz ends up the newer twin,
            # so _try_load prefers it (a half-written npz from a crash
            # here is caught by the load fallback).
            self.results.save(path)
            self.results.save_npz(npz)
        self._dirty = False
        if self.panel_cache is not None:
            # Publish the live object under the fresh file identity so
            # the next open of this npz is a cache hit, not a re-mmap.
            self.panel_cache.store(npz, self.results)

    # ------------------------------------------------------------------
    # Simulation

    def _make_simulator(self, policy: str):
        return self.backend.make_simulator(
            self.config.cores, policy, self.config.trace_length,
            self.config.warmup_fraction, self.config.seed,
            builder=self.builder)

    def run_workload(self, workload: Workload, policy: str) -> List[float]:
        """Per-core IPCs of one (workload, policy), memoised."""
        if not self.results.has(policy, workload):
            run = self._make_simulator(policy).run(workload)
            self.timing.simulations += 1
            self.timing.instructions += run.instructions
            self.timing.wall_seconds += run.wall_seconds
            self.results.record(policy, workload, run.ipcs)
            self._dirty = True
        return self.results.ipcs(policy, workload)

    def run_grid(self, workloads: Iterable[Workload],
                 policies: Sequence[str]) -> PopulationResults:
        """Simulate every (workload, policy) pair; returns the results.

        ``jobs=1`` runs in-process; ``jobs>1`` distributes the pending
        cells over a process pool and merges deterministically (see
        module docstring).
        """
        workloads = list(workloads)
        if backend_supports_batch(self.backend):
            return self._run_grid_batch(workloads, policies)
        if self.config.jobs == 1:
            for workload in workloads:
                for policy in policies:
                    self.run_workload(workload, policy)
            return self.results
        return self._run_grid_parallel(workloads, policies)

    # -- batch path ----------------------------------------------------

    def _record_batch(self, policy: str, workloads: Sequence[Workload],
                      ipcs, instructions: int, wall: float) -> None:
        self.results.record_batch(policy, workloads, ipcs)
        self._dirty = True
        self.timing.simulations += len(workloads)
        self.timing.instructions += instructions
        self.timing.wall_seconds += wall

    def _run_grid_batch(self, workloads: Sequence[Workload],
                        policies: Sequence[str]) -> PopulationResults:
        """One ``run_batch`` call (or ``jobs`` chunks) per policy.

        Batch rows are independent, so per-policy panels concatenated
        from pool chunks are bit-identical to a serial run.
        """
        pending: List[Tuple[str, List[Workload]]] = []
        for policy in policies:
            seen = set()
            todo = []
            for workload in workloads:
                if workload in seen or self.results.has(policy, workload):
                    continue
                seen.add(workload)
                todo.append(workload)
            if todo:
                pending.append((policy, todo))
        if not pending:
            return self.results
        cells = sum(len(todo) for _, todo in pending)
        workers = min(self.config.jobs, cells)
        # Policy-axis backends collapse the per-policy loop into one
        # N x P x K dispatch whenever every policy has the same pending
        # rows (the common case: a fresh or uniformly-cached grid).
        # Ragged caches grid-dispatch the rows every policy still
        # shares, then finish the per-policy remainders below.
        if backend_supports_policy_axis(self.backend) and len(pending) > 1:
            if all(todo == pending[0][1] for _, todo in pending[1:]):
                return self._run_grid_policy_axis(pending[0][1],
                                                  [p for p, _ in pending],
                                                  workers)
            shared_keys = set(pending[0][1])
            for _, todo in pending[1:]:
                shared_keys &= set(todo)
            if shared_keys:
                shared = [w for w in pending[0][1] if w in shared_keys]
                self._run_grid_policy_axis(shared,
                                           [p for p, _ in pending],
                                           workers)
                pending = [(policy,
                            [w for w in todo if w not in shared_keys])
                           for policy, todo in pending]
                pending = [(policy, todo) for policy, todo in pending
                           if todo]
                if not pending:
                    return self.results
                cells = sum(len(todo) for _, todo in pending)
                workers = min(self.config.jobs, cells)
                # Remainders are often uniform among themselves (one
                # policy was cached, the rest share its missing rows).
                if (len(pending) > 1
                        and all(todo == pending[0][1]
                                for _, todo in pending[1:])):
                    return self._run_grid_policy_axis(
                        pending[0][1], [p for p, _ in pending], workers)
        if workers <= 1:
            for policy, todo in pending:
                run = self._make_simulator(policy).run_batch(todo)
                self._record_batch(policy, todo, run.ipcs,
                                   run.instructions, run.wall_seconds)
            return self.results
        self._prepare_builder(
            sorted({name for _, todo in pending
                    for workload in todo for name in workload}),
            [policy for policy, _ in pending])
        tasks = []
        for policy, todo in pending:
            step = (len(todo) + workers - 1) // workers
            for start in range(0, len(todo), step):
                chunk = todo[start:start + step]
                tasks.append((policy, tuple(w.key() for w in chunk)))
        merged: Dict[Tuple[str, Tuple[str, ...]], Tuple] = {}
        with ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context(),
                initializer=_worker_init,
                initargs=(self.backend, self.config, self.builder)) as pool:
            for policy, keys, ipcs, instructions, wall in pool.map(
                    _worker_simulate_batch, tasks):
                merged[(policy, keys)] = (ipcs, instructions, wall)
        # Record chunks in task order, i.e. exactly the serial order.
        for task in tasks:
            policy, keys = task
            ipcs, instructions, wall = merged[task]
            chunk = [Workload.from_key(key) for key in keys]
            self._record_batch(policy, chunk, ipcs, instructions, wall)
        return self.results

    def _prepare_builder(self, benchmarks: Sequence[str],
                         policies: Sequence[str]) -> None:
        """Train (and, where supported, calibrate) in the parent process.

        Called before forking pool workers so they inherit the
        expensive state instead of re-deriving it per process.
        """
        if self.builder is None:
            return
        if hasattr(self.builder, "prepare"):
            self.builder.prepare(benchmarks, policies, self.config.cores,
                                 self.config.warmup_fraction)
        elif hasattr(self.builder, "build"):
            for benchmark in benchmarks:
                self.builder.build(benchmark)

    def _run_grid_policy_axis(self, todo: Sequence[Workload],
                              policies: Sequence[str],
                              workers: int) -> PopulationResults:
        """One ``run_batch_grid`` dispatch for the whole pending grid.

        Every policy shares the same pending rows, so the engine's
        per-policy loop becomes a single N x P x K call (``jobs=1``) or
        ``jobs`` row chunks, each scoring all policies (``jobs>1``).
        Rows are independent and each policy's slice equals its
        single-policy batch panel, so results stay bit-identical to the
        per-policy path for any ``jobs``.
        """
        todo = list(todo)
        policies = list(policies)
        workers = min(workers, len(todo))
        if workers <= 1:
            grid = self._make_simulator(policies[0]).run_batch_grid(
                todo, policies)
            self.timing.simulations += len(todo) * len(policies)
            self.timing.instructions += grid.instructions
            self.timing.wall_seconds += grid.wall_seconds
            for number, policy in enumerate(policies):
                self.results.record_batch(policy, todo,
                                          grid.ipcs[:, number, :])
            self._dirty = True
            return self.results
        self._prepare_builder(
            sorted({name for workload in todo for name in workload}),
            policies)
        step = (len(todo) + workers - 1) // workers
        chunk_keys = [tuple(w.key() for w in todo[start:start + step])
                      for start in range(0, len(todo), step)]
        tasks = [(tuple(policies), keys) for keys in chunk_keys]
        merged: Dict[Tuple[str, ...], Tuple] = {}
        with ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context(),
                initializer=_worker_init,
                initargs=(self.backend, self.config, self.builder)) as pool:
            for keys, ipcs, instructions, wall in pool.map(
                    _worker_simulate_grid, tasks):
                merged[keys] = (ipcs, instructions, wall)
        # Record policy-major with chunks in row order -- exactly the
        # block layout the serial per-policy path would produce.
        for number, policy in enumerate(policies):
            for keys in chunk_keys:
                ipcs, _, _ = merged[keys]
                chunk = [Workload.from_key(key) for key in keys]
                self.results.record_batch(policy, chunk,
                                          ipcs[:, number, :])
                self._dirty = True
        for keys in chunk_keys:
            ipcs, instructions, wall = merged[keys]
            self.timing.simulations += ipcs.shape[0] * len(policies)
            self.timing.instructions += instructions
            self.timing.wall_seconds += wall
        return self.results

    # -- per-workload pool path ----------------------------------------

    def _run_grid_parallel(self, workloads: Sequence[Workload],
                           policies: Sequence[str]) -> PopulationResults:
        pending: List[Tuple[str, str]] = []
        seen = set()
        for workload in workloads:
            for policy in policies:
                task = (policy, workload.key())
                if task in seen or self.results.has(policy, workload):
                    continue
                seen.add(task)
                pending.append(task)
        if not pending:
            return self.results
        # Train models once in the parent before the pool starts: forked
        # workers inherit the trained cache (and spawn ships it in the
        # initializer pickle) instead of re-training per worker.  Only
        # benchmarks with pending cells need models.
        if self.builder is not None and hasattr(self.builder, "build"):
            for benchmark in sorted({name for _, key in pending
                                     for name in Workload.from_key(key)}):
                self.builder.build(benchmark)
        merged: Dict[Tuple[str, str], Tuple[List[float], int, float]] = {}
        workers = min(self.config.jobs, len(pending))
        with ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context(),
                initializer=_worker_init,
                initargs=(self.backend, self.config, self.builder)) as pool:
            for policy, key, ipcs, instructions, wall in pool.map(
                    _worker_simulate, pending):
                merged[(policy, key)] = (ipcs, instructions, wall)
        # Record in the exact order the serial path would have, so the
        # results (and their JSON) are bit-identical for any `jobs`.
        for workload in workloads:
            for policy in policies:
                entry = merged.pop((policy, workload.key()), None)
                if entry is None:
                    continue
                ipcs, instructions, wall = entry
                self.timing.simulations += 1
                self.timing.instructions += instructions
                self.timing.wall_seconds += wall
                self.results.record(policy, workload, ipcs)
                self._dirty = True
        return self.results

    def reference_ipcs(self, benchmarks: Iterable[str],
                       policy: str = "LRU") -> Dict[str, float]:
        """Single-thread reference IPCs (memoised in the results)."""
        for benchmark in benchmarks:
            if benchmark not in self.results.reference:
                started = time.perf_counter()
                ipc = self._make_simulator(policy).reference_ipc(benchmark)
                self.timing.simulations += 1
                self.timing.instructions += self.config.trace_length
                self.timing.wall_seconds += time.perf_counter() - started
                self.results.record_reference(benchmark, ipc)
                self._dirty = True
        return dict(self.results.reference)

    def __repr__(self) -> str:
        return (f"Campaign({self.config.backend!r}, cores={self.cores}, "
                f"length={self.trace_length}, jobs={self.config.jobs}, "
                f"entries={len(self.results)})")
