"""The public face of the library: backends, campaigns, sessions.

This package is the one import an experimenter needs::

    from repro.api import Session

    session = Session(scale="small", seed=0, jobs=4)
    study = session.study("LRU", "DIP", metric="IPCT", cores=2,
                          backend="badco")
    print(study.inverse_cv, study.guideline())

Layers, bottom up:

- :mod:`repro.api.backends` -- the :class:`SimulatorBackend` protocol
  and the :data:`BACKENDS` registry (``detailed`` / ``badco`` /
  ``interval`` / ``analytic``, plus anything registered at runtime);
- :mod:`repro.api.config` -- :class:`CampaignConfig`, the frozen value
  object that identifies a campaign and names its cache entry;
- :mod:`repro.api.engine` -- :class:`Campaign`, the serial/parallel
  grid runner (``jobs>1`` fans out over a process pool with
  bit-identical results);
- :mod:`repro.api.scales` -- the SMALL / MEDIUM / FULL size knobs;
- :mod:`repro.api.session` -- :class:`Session`, the fluent facade tying
  them together.
"""

from repro.api.backends import (
    BACKENDS,
    AnalyticBackend,
    BadcoBackend,
    DetailedBackend,
    IntervalBackend,
    SimulatorBackend,
    UnknownBackendError,
    backend_names,
    backend_supports_batch,
    backend_supports_policy_axis,
    get_backend,
    register_backend,
)
from repro.api.config import RESULTS_VERSION, CampaignConfig
from repro.api.engine import Campaign, CampaignTiming
from repro.api.scales import (
    Scale,
    ScaleParameters,
    coerce_scale,
    default_cache_dir,
    default_model_store_dir,
    scale_parameters,
)
from repro.api.session import FullScaleEstimate, Session, TwoStageEstimate

__all__ = [
    # backends
    "BACKENDS", "SimulatorBackend", "UnknownBackendError",
    "DetailedBackend", "BadcoBackend", "IntervalBackend",
    "AnalyticBackend", "register_backend", "get_backend",
    "backend_names", "backend_supports_batch",
    "backend_supports_policy_axis",
    # campaigns
    "CampaignConfig", "Campaign", "CampaignTiming", "RESULTS_VERSION",
    # scales
    "Scale", "ScaleParameters", "coerce_scale", "scale_parameters",
    "default_cache_dir", "default_model_store_dir",
    # facade
    "Session", "FullScaleEstimate", "TwoStageEstimate",
]
