"""Pluggable simulator backends.

A *backend* wraps one simulator family behind a uniform factory
interface so campaigns, the CLI and the :class:`repro.api.Session`
facade can drive any of them by name.  The registry ships with the
repository's three families:

- ``detailed`` -- the slow ground truth (out-of-order cores);
- ``badco``    -- the paper's fast approximate simulator (two training
  runs per benchmark, per-node latency sensitivities);
- ``interval`` -- the cruder one-training-run interval model;
- ``analytic`` -- the array-evaluated BADCO variant: whole workload
  panels in a handful of NumPy calls (see :mod:`repro.sim.analytic`).

Backends whose simulators can score many workloads per call declare it
with ``supports_batch = True``; their simulator objects then expose
``run_batch(workloads) -> BatchRun`` next to the per-workload ``run``,
and the campaign engine dispatches grids to the batch path (serial or
chunked over the process pool) instead of the per-workload loop.
Backends that can also batch the policy dimension declare
``supports_policy_axis = True`` and expose
``run_batch_grid(workloads, policies) -> GridRun`` (one N x P x K
call); the engine then collapses its per-policy loop into a single
dispatch whenever every policy shares the same pending workloads.

Third-party simulators plug in without touching this package::

    from repro.api import SimulatorBackend, register_backend

    class SniperBackend:
        name = "sniper"
        def make_builder(self, trace_length, seed): ...
        def make_simulator(self, cores, policy, trace_length,
                           warmup_fraction, seed, builder=None): ...

    register_backend(SniperBackend())

Simulator classes are imported lazily inside the factory methods so
importing the registry stays cheap and free of import cycles.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, Tuple, runtime_checkable


@runtime_checkable
class SimulatorBackend(Protocol):
    """Factory interface one simulator family must implement.

    The simulator object returned by :meth:`make_simulator` must offer
    ``run(workload) -> WorkloadRun`` and
    ``reference_ipc(benchmark) -> float`` -- the contract shared by
    :class:`~repro.sim.detailed.DetailedSimulator`,
    :class:`~repro.sim.badco.BadcoSimulator` and
    :class:`~repro.sim.interval.IntervalSimulator`.

    Backends may additionally declare ``supports_batch = True`` (left
    out of the protocol so plain factories still conform) when their
    simulators expose ``run_batch(workloads) -> BatchRun``; the engine
    queries it via :func:`backend_supports_batch`.
    """

    name: str

    def make_builder(self, trace_length: int, seed: int) -> Optional[Any]:
        """A shareable model builder, or None if the family needs none.

        Builders memoise per-benchmark training, so campaigns share one
        across simulators of the same (trace_length, seed).
        """

    def make_simulator(self, cores: int, policy: str, trace_length: int,
                       warmup_fraction: float = 0.25, seed: int = 0,
                       builder: Optional[Any] = None) -> Any:
        """Construct a ready-to-run simulator instance."""


class DetailedBackend:
    """The detailed out-of-order multicore simulator (no builder)."""

    name = "detailed"

    def make_builder(self, trace_length: int, seed: int) -> None:
        return None

    def make_simulator(self, cores: int, policy: str, trace_length: int,
                       warmup_fraction: float = 0.25, seed: int = 0,
                       builder: Optional[Any] = None) -> Any:
        from repro.sim.detailed import DetailedSimulator

        return DetailedSimulator(
            cores=cores, policy=policy, trace_length=trace_length,
            warmup_fraction=warmup_fraction, seed=seed)


class BadcoBackend:
    """The BADCO-style approximate simulator (shared model builder).

    Batch-capable: :class:`~repro.sim.badco.multicore.BadcoSimulator`
    mixes in :class:`~repro.sim.batch.EventDrivenBatchMixin`, so grids
    dispatch through ``run_batch`` (serial, or jobs-invariant pool
    chunks) exactly like the analytic backend.
    """

    name = "badco"
    supports_batch = True

    def make_builder(self, trace_length: int, seed: int) -> Any:
        from repro.sim.badco.model import BadcoModelBuilder

        return BadcoModelBuilder(trace_length, seed)

    def make_simulator(self, cores: int, policy: str, trace_length: int,
                       warmup_fraction: float = 0.25, seed: int = 0,
                       builder: Optional[Any] = None) -> Any:
        from repro.sim.badco.multicore import BadcoSimulator

        return BadcoSimulator(
            cores=cores, policy=policy,
            builder=builder or self.make_builder(trace_length, seed),
            trace_length=trace_length, warmup_fraction=warmup_fraction,
            seed=seed)


class IntervalBackend:
    """The one-training-run interval-model simulator.

    Batch-capable like ``badco``: the simulator's ``run_batch`` comes
    from :class:`~repro.sim.batch.EventDrivenBatchMixin`.
    """

    name = "interval"
    supports_batch = True

    def make_builder(self, trace_length: int, seed: int) -> Any:
        from repro.sim.interval.profile import IntervalProfileBuilder

        return IntervalProfileBuilder(trace_length, seed)

    def make_simulator(self, cores: int, policy: str, trace_length: int,
                       warmup_fraction: float = 0.25, seed: int = 0,
                       builder: Optional[Any] = None) -> Any:
        from repro.sim.interval.multicore import IntervalSimulator

        return IntervalSimulator(
            cores=cores, policy=policy,
            builder=builder or self.make_builder(trace_length, seed),
            trace_length=trace_length, warmup_fraction=warmup_fraction,
            seed=seed)


class AnalyticBackend:
    """The array-evaluated BADCO model (batch-capable, shared builder)."""

    name = "analytic"
    supports_batch = True
    supports_policy_axis = True

    def make_builder(self, trace_length: int, seed: int) -> Any:
        from repro.sim.analytic import AnalyticModelBuilder

        return AnalyticModelBuilder(trace_length, seed)

    def make_simulator(self, cores: int, policy: str, trace_length: int,
                       warmup_fraction: float = 0.25, seed: int = 0,
                       builder: Optional[Any] = None) -> Any:
        from repro.sim.analytic import AnalyticSimulator

        return AnalyticSimulator(
            cores=cores, policy=policy,
            builder=builder or self.make_builder(trace_length, seed),
            trace_length=trace_length, warmup_fraction=warmup_fraction,
            seed=seed)


def backend_supports_batch(backend: SimulatorBackend) -> bool:
    """Whether a backend's simulators offer the ``run_batch`` path."""
    return bool(getattr(backend, "supports_batch", False))


def backend_supports_policy_axis(backend: SimulatorBackend) -> bool:
    """Whether a backend's simulators offer ``run_batch_grid``.

    Policy-axis backends score a whole (workloads x policies) grid in
    one N x P x K call; the engine then replaces its per-policy batch
    loop with a single dispatch.  Implies :func:`backend_supports_batch`.
    """
    return bool(getattr(backend, "supports_policy_axis", False))


class UnknownBackendError(ValueError):
    """Raised for a backend name absent from :data:`BACKENDS`."""


#: Registry of simulator backends by name.
BACKENDS: Dict[str, SimulatorBackend] = {}


def register_backend(backend: SimulatorBackend, *,
                     replace: bool = False) -> SimulatorBackend:
    """Add a backend to :data:`BACKENDS` under ``backend.name``.

    Args:
        backend: the backend instance to register.
        replace: allow overwriting an existing registration.

    Returns:
        The backend, so the call composes as a decorator-ish one-liner.

    Raises:
        ValueError: if the name is empty or already taken (and
            ``replace`` is false).
    """
    name = getattr(backend, "name", "")
    if not name:
        raise ValueError("backend must have a non-empty name")
    if name in BACKENDS and not replace:
        raise ValueError(
            f"backend {name!r} is already registered; "
            f"pass replace=True to overwrite")
    BACKENDS[name] = backend
    return backend


def get_backend(name: str) -> SimulatorBackend:
    """Look up a backend by name.

    Raises:
        UnknownBackendError: naming the known backends, so callers
            (and CLI users) see what is available.
    """
    try:
        return BACKENDS[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown simulator backend {name!r}; "
            f"known backends: {', '.join(sorted(BACKENDS))}") from None


def backend_names() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(BACKENDS))


register_backend(DetailedBackend())
register_backend(BadcoBackend())
register_backend(IntervalBackend())
register_backend(AnalyticBackend())
