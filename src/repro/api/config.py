"""Campaign configuration: one frozen value object, one cache key.

:class:`CampaignConfig` replaces the positional-argument sprawl of the
old ``SimulationCampaign(simulator, cores, trace_length, seed, ...)``
constructor.  Being frozen and hashable, a config doubles as the
identity of a campaign: two campaigns with equal *simulation* fields
are interchangeable, and :attr:`CampaignConfig.cache_key` names the
on-disk cache entry they share.

``jobs`` and ``cache_dir`` deliberately stay out of the cache key:
parallelism must never change results (the engine guarantees
bit-identical output for any ``jobs``), and the cache directory is a
storage location, not an experiment parameter.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, FrozenSet, Optional, Union

from repro.bench.generator import DEFAULT_TRACE_LENGTH


def resolve_jobs(jobs: int) -> int:
    """Resolve a ``jobs`` request to a concrete worker count.

    ``0`` means *auto*: one worker per available CPU (``os.cpu_count()``,
    never less than 1), so callers on a 1-core host get the serial path
    instead of paying pool overhead for nothing -- the degenerate-
    parallelism footgun the bench trajectory exposed
    (``sim-batch-parallel-jobs2`` at 0.9x jobs1 on a 1-core runner).
    Explicit positive values are honoured as given: parallelism is
    bit-identical by contract, and tests rely on forcing the pool path
    with ``jobs=2`` even where only one CPU exists.
    """
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = auto)")
    if jobs == 0:
        return max(1, os.cpu_count() or 1)
    return jobs

#: Results-format revision, part of every cache key.  Bump whenever a
#: change alters simulated IPCs for identical configs, so stale caches
#: are bypassed rather than silently served.  History:
#: v2 -- replacement-policy RNGs seeded with crc32 instead of the
#:       per-process-salted ``hash()`` (results before the fix were not
#:       reproducible across processes and cannot be trusted).
RESULTS_VERSION = 2


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that identifies one simulation campaign.

    Attributes:
        backend: simulator backend name (see ``repro.api.BACKENDS``).
        cores: number of cores K.
        trace_length: uops per thread.
        seed: campaign seed (traces, policies, page layout).
        warmup_fraction: per-thread unmeasured fraction.
        jobs: worker processes for grid simulation; 1 = in-process
            serial (the default), larger values use a process pool,
            0 = auto (one worker per CPU via :func:`resolve_jobs`,
            resolved at construction so the stored field is always a
            concrete count).
        cache_dir: if set, results persist as JSON under this directory
            keyed by :attr:`cache_key`.
        model_store_dir: if set, trained models (BADCO node models,
            analytic calibrations and probes) persist under this
            directory (see :mod:`repro.sim.modelstore`) and campaigns
            load instead of retraining on a hit.  Like ``cache_dir``,
            a storage location -- never part of the cache key, never a
            result-changing knob (stored artefacts round-trip
            bit-identically).
    """

    backend: str = "badco"
    cores: int = 2
    trace_length: int = DEFAULT_TRACE_LENGTH
    seed: int = 0
    warmup_fraction: float = 0.25
    jobs: int = 1
    cache_dir: Optional[Union[str, Path]] = None
    model_store_dir: Optional[Union[str, Path]] = None

    #: Fields that deliberately do NOT participate in :attr:`cache_key`:
    #: execution/storage knobs that must never change results.  Every
    #: field must either be read by ``cache_key`` or appear here -- the
    #: ``REP003`` cache-key-drift lint rule enforces the partition, so
    #: adding a field without classifying it fails ``repro lint`` (and
    #: ``tests/test_api.py`` keeps this list in sync with the fields).
    _SIGNATURE_EXCLUDE: ClassVar[FrozenSet[str]] = frozenset({
        "jobs",             # parallelism is bit-identical by contract
        "cache_dir",        # a storage location, not a parameter
        "model_store_dir",  # stored artefacts round-trip bit-identically
    })

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.trace_length < 1:
            raise ValueError("trace_length must be >= 1")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        object.__setattr__(self, "jobs", resolve_jobs(self.jobs))
        if self.cache_dir is not None and not isinstance(self.cache_dir, Path):
            object.__setattr__(self, "cache_dir", Path(self.cache_dir))
        if self.model_store_dir is not None and \
                not isinstance(self.model_store_dir, Path):
            object.__setattr__(self, "model_store_dir",
                               Path(self.model_store_dir))

    @property
    def cache_key(self) -> str:
        """Stable identity of the campaign's *results*.

        Covers exactly the fields that determine IPC values plus
        :data:`RESULTS_VERSION`; ``jobs`` and ``cache_dir`` are
        excluded by design.  Caches written before the versioned
        layout (no ``-v`` suffix) are deliberately not read: they
        predate the deterministic policy seeding.
        """
        return (f"{self.backend}-k{self.cores}-l{self.trace_length}"
                f"-s{self.seed}-w{int(self.warmup_fraction * 100)}"
                f"-v{RESULTS_VERSION}")

    @property
    def cache_path(self) -> Optional[Path]:
        """Where this campaign persists, or None without a cache_dir."""
        if self.cache_dir is None:
            return None
        return Path(self.cache_dir) / f"{self.cache_key}.json"

    @property
    def cache_npz_path(self) -> Optional[Path]:
        """The ``.npz`` twin written next to :attr:`cache_path`.

        Same key, columnar payload: loads restore whole IPC panels as
        matrices (no per-workload mapping rebuild), which is what makes
        re-opening 10^6-workload campaigns cheap.
        """
        if self.cache_dir is None:
            return None
        return Path(self.cache_dir) / f"{self.cache_key}.npz"

    def replace(self, **changes) -> "CampaignConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)
