"""Experiment scales: how big a reproduction run should be.

The paper's populations (253 / 12650 / 10000 workloads at 100 M
instructions each) are out of reach for a pure-Python reproduction run
under CI, so every entry point accepts a :class:`Scale`:

- ``SMALL``: seconds; unit-test sized, statistically noisy.
- ``MEDIUM``: minutes; the default for the benchmark harness --
  population shapes and orderings are stable at this size.
- ``FULL``: the paper's population sizes (hours of CPU).

Historically these lived in ``repro.experiments.common``, which still
re-exports them; they moved here so the public :mod:`repro.api` facade
can use them without depending on the experiment drivers.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union


class Scale(enum.Enum):
    """Experiment size knob (see module docstring)."""

    SMALL = "small"
    MEDIUM = "medium"
    FULL = "full"


ScaleLike = Union["Scale", str]


def coerce_scale(value: ScaleLike) -> Scale:
    """Accept a :class:`Scale` or its name ("small" / "medium" / "full")."""
    if isinstance(value, Scale):
        return value
    try:
        return Scale(str(value).lower())
    except ValueError:
        raise ValueError(
            f"scale must be one of {', '.join(s.value for s in Scale)} "
            f"(got {value!r})") from None


@dataclass(frozen=True)
class ScaleParameters:
    """Concrete sizes for one scale.

    Attributes:
        trace_length: uops per thread.
        population_cap: max workloads in the approximate-simulation
            population per core count (None = the paper's exact sizes).
        detailed_sample: workloads simulated with the detailed
            simulator (the paper uses 250).
        draws: Monte-Carlo resamples per confidence estimate.
    """

    trace_length: int
    population_cap: Dict[int, int]
    detailed_sample: int
    draws: int


_PARAMETERS: Dict[Scale, ScaleParameters] = {
    Scale.SMALL: ScaleParameters(
        trace_length=6000,
        population_cap={2: 60, 4: 80, 8: 60},
        detailed_sample=8,
        draws=200,
    ),
    Scale.MEDIUM: ScaleParameters(
        trace_length=16000,
        population_cap={2: 253, 4: 700, 8: 400},
        detailed_sample=40,
        draws=1000,
    ),
    Scale.FULL: ScaleParameters(
        trace_length=20000,
        population_cap={2: 253, 4: 12650, 8: 10000},
        detailed_sample=250,
        draws=10000,
    ),
}


def scale_parameters(scale: ScaleLike) -> ScaleParameters:
    """The concrete sizes of one scale."""
    return _PARAMETERS[coerce_scale(scale)]


def default_cache_dir() -> Optional[Path]:
    """Campaign cache directory (``REPRO_CACHE_DIR``; empty disables)."""
    value = os.environ.get("REPRO_CACHE_DIR")
    if value == "":
        return None
    if value:
        return Path(value)
    return Path.home() / ".cache" / "repro-ispass2013"


def default_model_store_dir(cache_dir: Optional[Path]) -> Optional[Path]:
    """Trained-model store directory for a session.

    ``REPRO_MODEL_STORE_DIR`` overrides (empty string disables);
    otherwise the store lives in a ``models/`` subdirectory of the
    campaign cache -- so disabling the cache (CI hermeticity) disables
    model persistence with it.
    """
    value = os.environ.get("REPRO_MODEL_STORE_DIR")
    if value == "":
        return None
    if value:
        return Path(value)
    if cache_dir is None:
        return None
    return Path(cache_dir) / "models"
