"""The project-specific invariant rules (REP001 .. REP008).

Each rule encodes one reproducibility invariant, with its motivating
bug or upcoming need recorded in ``motivation`` (also listed in the
README's "Invariants & static analysis" section).  The heuristics are
deliberately syntactic: they inspect what the code *says* (AST), not
what it might do, so they stay fast, dependency-free and predictable.
Legitimate exceptions get a ``# repro: allow[REP00x] reason`` comment
(see :mod:`repro.analysis.suppress`).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleSource, Project, Rule, register


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    return dotted_name(node.func)


def _names_in(node: ast.AST) -> Set[str]:
    """Every bare identifier referenced anywhere inside ``node``."""
    return {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}


def _enclosing_functions(module: ModuleSource,
                         node: ast.AST) -> Iterator[ast.AST]:
    parent = module.parents.get(node)
    while parent is not None:
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield parent
        parent = module.parents.get(parent)


# ----------------------------------------------------------------------
# REP001 -- unseeded RNG / global RNG state


#: random-module functions that draw from (or mutate) the process-global
#: RNG.  Any use in library code couples results to import order and
#: other callers, which breaks the bit-identity contract.
_GLOBAL_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "setstate", "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})

#: np.random constructors that are fine *when given a seed*.
_NP_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})


@register
class UnseededRngRule(Rule):
    id = "REP001"
    name = "unseeded-rng"
    motivation = ("campaigns must be bit-identical across runs and "
                  "processes; an unseeded or process-global RNG breaks "
                  "jobs=N == jobs=1 and poisons on-disk caches")

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            has_args = bool(node.args or node.keywords)
            if name in ("random.Random", "Random") and not has_args:
                findings.append(module.finding(
                    self.id, node.lineno,
                    "random.Random() without a seed draws OS entropy; "
                    "derive the seed from the campaign seed instead"))
            elif name.startswith(("np.random.", "numpy.random.")):
                tail = name.rsplit(".", 1)[1]
                if tail in _NP_CONSTRUCTORS:
                    if not has_args:
                        findings.append(module.finding(
                            self.id, node.lineno,
                            f"{name}() without a seed is entropy-seeded; "
                            "pass a seed derived from the campaign seed"))
                else:
                    findings.append(module.finding(
                        self.id, node.lineno,
                        f"{name}() uses NumPy's process-global RNG; "
                        "use a seeded np.random.default_rng(seed) "
                        "Generator instead"))
            elif name == "default_rng" and not has_args:
                findings.append(module.finding(
                    self.id, node.lineno,
                    "default_rng() without a seed is entropy-seeded; "
                    "pass a seed derived from the campaign seed"))
            elif (name.startswith("random.")
                  and name.count(".") == 1
                  and name.rsplit(".", 1)[1] in _GLOBAL_RANDOM_FNS):
                findings.append(module.finding(
                    self.id, node.lineno,
                    f"{name}() uses the process-global RNG; construct a "
                    "seeded random.Random(seed) instance instead"))
        return findings


# ----------------------------------------------------------------------
# REP002 -- builtin hash() for seeds / persistent keys


@register
class SaltedHashRule(Rule):
    id = "REP002"
    name = "salted-hash"
    motivation = ("the PR 1 bug class: str/bytes hash() is salted per "
                  "process (PYTHONHASHSEED), so seeds or persistent keys "
                  "built from it differ between processes")

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "hash"):
                findings.append(module.finding(
                    self.id, node.lineno,
                    "builtin hash() is per-process salted for str/bytes; "
                    "use zlib.crc32 or hashlib for anything that feeds a "
                    "seed or outlives the process (in-process __hash__ "
                    "implementations may be suppressed with a reason)"))
        return findings


# ----------------------------------------------------------------------
# REP003 -- CampaignConfig fields must be classified w.r.t. the cache key


_EXCLUDE_NAME = "_SIGNATURE_EXCLUDE"
_KEY_METHODS = ("cache_key", "signature")


def _string_constants(node: ast.AST) -> Set[str]:
    return {sub.value for sub in ast.walk(node)
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str)}


@register
class CacheKeyDriftRule(Rule):
    id = "REP003"
    name = "cache-key-drift"
    motivation = ("the -v2 cache-key bump exists because keys once "
                  "missed result-changing fields; every CampaignConfig "
                  "field must be read by cache_key or listed in "
                  "_SIGNATURE_EXCLUDE, so adding a field without "
                  "classifying it fails the lint")

    def check_project(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            try:
                tree = module.tree
            except SyntaxError:
                continue
            for node in ast.walk(tree):
                if (isinstance(node, ast.ClassDef)
                        and node.name == "CampaignConfig"):
                    return self._check_config_class(module, node)
        return ()

    def _check_config_class(self, module: ModuleSource,
                            cls: ast.ClassDef) -> List[Finding]:
        findings: List[Finding] = []
        fields: Dict[str, int] = {}
        excluded: Optional[Set[str]] = None
        exclude_line = cls.lineno
        key_reads: Optional[Set[str]] = None
        key_line = cls.lineno
        for statement in cls.body:
            if (isinstance(statement, ast.AnnAssign)
                    and isinstance(statement.target, ast.Name)):
                target = statement.target.id
                annotation = dotted_name(statement.annotation)
                if isinstance(statement.annotation, ast.Subscript):
                    annotation = dotted_name(statement.annotation.value)
                is_classvar = annotation is not None and \
                    annotation.split(".")[-1] == "ClassVar"
                if target == _EXCLUDE_NAME and statement.value is not None:
                    excluded = _string_constants(statement.value)
                    exclude_line = statement.lineno
                elif not target.startswith("_") and not is_classvar:
                    fields[target] = statement.lineno
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if (isinstance(target, ast.Name)
                            and target.id == _EXCLUDE_NAME):
                        excluded = _string_constants(statement.value)
                        exclude_line = statement.lineno
            elif (isinstance(statement, ast.FunctionDef)
                    and statement.name in _KEY_METHODS):
                key_reads = self._self_attribute_reads(statement)
                key_line = statement.lineno
        if key_reads is None:
            return [module.finding(
                self.id, cls.lineno,
                "CampaignConfig has no cache_key/signature method to "
                "anchor the cache-key-drift check")]
        if excluded is None:
            return [module.finding(
                self.id, cls.lineno,
                f"CampaignConfig must declare {_EXCLUDE_NAME} naming the "
                "fields deliberately left out of the cache key")]
        for field, line in fields.items():
            in_key = field in key_reads
            in_exclude = field in excluded
            if in_key and in_exclude:
                findings.append(module.finding(
                    self.id, line,
                    f"field {field!r} is read by cache_key but also "
                    f"listed in {_EXCLUDE_NAME}; classify it one way"))
            elif not in_key and not in_exclude:
                findings.append(module.finding(
                    self.id, line,
                    f"field {field!r} is neither read by cache_key nor "
                    f"listed in {_EXCLUDE_NAME}: decide whether it "
                    "changes results (key) or not (exclude list)"))
        for name in sorted(excluded - set(fields)):
            findings.append(module.finding(
                self.id, exclude_line,
                f"{_EXCLUDE_NAME} names {name!r}, which is not a "
                "CampaignConfig field"))
        del key_line
        return findings

    @staticmethod
    def _self_attribute_reads(function: ast.FunctionDef) -> Set[str]:
        return {node.attr for node in ast.walk(function)
                if isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"}


# ----------------------------------------------------------------------
# REP004 -- every *_scalar sibling must be referenced by a test


@register
class ParityPairRule(Rule):
    id = "REP004"
    name = "parity-pair"
    motivation = ("vectorized/scalar pairs (rows_matrix vs "
                  "rows_matrix_scalar et al.) keep a golden fallback "
                  "only if a test actually exercises the scalar side; "
                  "an unreferenced sibling is dead weight that will "
                  "silently drift")

    def check_project(self, project: Project) -> Iterable[Finding]:
        if not project.tests:
            return ()       # nothing to check references against
        findings: List[Finding] = []
        for module in project.modules:
            try:
                tree = module.tree
            except SyntaxError:
                continue
            for node in ast.walk(tree):
                if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and node.name.endswith("_scalar")
                        and not project.tests_mention(node.name)):
                    findings.append(module.finding(
                        self.id, node.lineno,
                        f"scalar sibling {node.name!r} is referenced by "
                        "no test; add a golden-parity test or remove the "
                        "pair"))
        return findings


# ----------------------------------------------------------------------
# REP005 -- persistence writes must be atomic (temp + os.replace)


_WRITE_MODES = frozenset("wax")
_BUFFER_FACTORIES = frozenset({"BytesIO", "StringIO"})
_SAVEZ_TAILS = frozenset({"savez", "savez_compressed", "save"})
#: Context managers that already implement (or don't need) the atomic
#: idiom: handles they yield may be written to freely.
_ATOMIC_CONTEXTS = frozenset({
    "atomic_open", "NamedTemporaryFile", "TemporaryFile",
    "SpooledTemporaryFile", "TemporaryDirectory",
})


def _open_mode(call: ast.Call) -> Optional[str]:
    """The literal mode of an ``open``-style call, if statically known."""
    mode_node: Optional[ast.AST] = None
    if len(call.args) > 1:
        mode_node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value,
                                                         str):
        return mode_node.value
    return None


def _func_tail(call: ast.Call) -> Optional[str]:
    """The called name's last component (works through ``X(...).attr``)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _is_write_open(call: ast.Call) -> bool:
    if _func_tail(call) != "open":
        return False
    mode = _open_mode(call)
    return mode is not None and bool(set(mode) & _WRITE_MODES)


@register
class NonAtomicWriteRule(Rule):
    id = "REP005"
    name = "non-atomic-write"
    motivation = ("the concurrent estimation daemon needs readers that "
                  "never observe torn files; every write to a final "
                  "path must go through a temp file + os.replace (see "
                  "repro.ioutil), the idiom the model store pioneered")

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        scopes: List[ast.AST] = [module.tree] + [
            node for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]
        for scope in scopes:
            findings.extend(self._check_scope(module, scope))
        return findings

    def _scope_statements(self, scope: ast.AST) -> List[ast.stmt]:
        return list(scope.body)

    def _walk_scope(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested functions."""
        stack: List[ast.AST] = self._scope_statements(scope)[::-1]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                stack.append(child)

    def _check_scope(self, module: ModuleSource,
                     scope: ast.AST) -> List[Finding]:
        blessed: Set[str] = set()
        for node in self._walk_scope(scope):
            if isinstance(node, ast.Call) and \
                    _call_name(node) == "os.replace" and node.args:
                blessed |= _names_in(node.args[0])
            elif isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Call):
                callee = _call_name(node.value)
                if callee is not None and \
                        callee.split(".")[-1] in _BUFFER_FACTORIES:
                    for target in node.targets:
                        blessed |= _names_in(target)
        findings: List[Finding] = []
        self._visit_writes(module, self._scope_statements(scope), blessed,
                           findings)
        return findings

    def _visit_writes(self, module: ModuleSource,
                      statements: Sequence[ast.AST], blessed: Set[str],
                      findings: List[Finding]) -> None:
        """In-order walk so `with open(tmp) as f` blesses `f` for its
        body."""
        for node in statements:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    callee = _call_name(expr) if isinstance(expr, ast.Call) \
                        else None
                    if callee is not None and \
                            callee.rsplit(".", 1)[-1] in _ATOMIC_CONTEXTS:
                        if item.optional_vars is not None:
                            blessed |= _names_in(item.optional_vars)
                        continue
                    if isinstance(expr, ast.Call) and _is_write_open(expr):
                        target_ok = self._target_blessed(expr.args[0],
                                                         blessed) \
                            if expr.args else False
                        if not (target_ok
                                or self._receiver_blessed(expr, blessed)):
                            findings.append(self._finding(module, expr))
                        # Bless the handle either way: one finding per
                        # construct, on the open, not on every write
                        # through it.
                        if item.optional_vars is not None:
                            blessed |= _names_in(item.optional_vars)
                    else:
                        self._check_expression(module, expr, blessed,
                                               findings)
                self._visit_writes(module, node.body, blessed, findings)
                continue
            self._check_expression(module, node, blessed, findings)
            self._visit_writes(module, list(ast.iter_child_nodes(node)),
                               blessed, findings)

    def _check_expression(self, module: ModuleSource, node: ast.AST,
                          blessed: Set[str],
                          findings: List[Finding]) -> None:
        if not isinstance(node, ast.Call):
            return
        tail = _func_tail(node)
        name = _call_name(node) or ""
        if tail is None:
            return
        if _is_write_open(node):
            target = node.args[0] if node.args else None
            if not ((target is not None
                     and self._target_blessed(target, blessed))
                    or self._receiver_blessed(node, blessed)):
                findings.append(self._finding(module, node))
        elif tail in ("write_text", "write_bytes") and \
                isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if not self._target_blessed(receiver, blessed):
                findings.append(self._finding(module, node))
        elif (tail in _SAVEZ_TAILS
                and name.split(".")[0] in ("np", "numpy") and node.args):
            if not self._target_blessed(node.args[0], blessed):
                findings.append(self._finding(module, node))

    @staticmethod
    def _target_blessed(target: ast.AST, blessed: Set[str]) -> bool:
        return bool(_names_in(target) & blessed)

    def _receiver_blessed(self, call: ast.Call, blessed: Set[str]) -> bool:
        """``tmp.open("w")``-style: the receiver is the blessed temp."""
        if _func_tail(call) == "open" and \
                isinstance(call.func, ast.Attribute):
            return self._target_blessed(call.func.value, blessed)
        return False

    def _finding(self, module: ModuleSource, node: ast.AST) -> Finding:
        return module.finding(
            self.id, node.lineno,
            "write to a final path without the temp + os.replace idiom; "
            "use repro.ioutil.atomic_open/atomic_write_* so concurrent "
            "readers never observe a torn file")


# ----------------------------------------------------------------------
# REP006 -- wall-clock / pid values must not reach signatures or keys


_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "os.getpid", "os.getppid",
    "uuid.uuid1", "uuid.uuid4",
})
_WALL_CLOCK_TAILS = frozenset({
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
})
_KEYISH_MARKERS = ("signature", "cache_key", "_key")
_ORDERLESS_STR_FUNCS = frozenset({"str", "repr", "format"})


def _is_wall_clock(name: str) -> bool:
    if name in _WALL_CLOCK:
        return True
    parts = name.split(".")
    return len(parts) >= 2 and ".".join(parts[-2:]) in _WALL_CLOCK_TAILS


@register
class WallClockInKeyRule(Rule):
    id = "REP006"
    name = "wall-clock-in-key"
    motivation = ("a timestamp or pid inside a signature, cache key or "
                  "persisted file name silently makes every run a cache "
                  "miss -- or worse, makes two runs disagree about "
                  "identity")

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None or not _is_wall_clock(name):
                continue
            if self._in_keyish_function(module, node) \
                    or self._feeds_string(module, node):
                findings.append(module.finding(
                    self.id, node.lineno,
                    f"{name}() flowing into a string/key context; "
                    "signatures and cache keys must be pure functions "
                    "of the configuration"))
        return findings

    @staticmethod
    def _in_keyish_function(module: ModuleSource, node: ast.AST) -> bool:
        for function in _enclosing_functions(module, node):
            lowered = function.name.lower()
            if any(marker in lowered for marker in _KEYISH_MARKERS):
                return True
        return False

    @staticmethod
    def _feeds_string(module: ModuleSource, node: ast.AST) -> bool:
        """The call participates in string formatting / concatenation."""
        current = node
        parent = module.parents.get(current)
        while parent is not None and not isinstance(parent, ast.stmt):
            if isinstance(parent, (ast.FormattedValue, ast.JoinedStr)):
                return True
            if isinstance(parent, ast.BinOp) and any(
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, str)
                    for side in (parent.left, parent.right)):
                return True
            if isinstance(parent, ast.Call):
                callee = dotted_name(parent.func) or ""
                tail = callee.rsplit(".", 1)[-1]
                if tail in _ORDERLESS_STR_FUNCS or tail == "join":
                    return True
            current, parent = parent, module.parents.get(parent)
        return False


# ----------------------------------------------------------------------
# REP007 -- no ordered output from set/frozenset iteration


_ORDER_INSENSITIVE = frozenset({
    "sorted", "sum", "max", "min", "any", "all", "len", "set", "frozenset",
    "Counter",
})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        return name in ("set", "frozenset")
    return False


@register
class SetIterationOrderRule(Rule):
    id = "REP007"
    name = "set-iteration-order"
    motivation = ("set iteration order depends on hash salts and "
                  "insertion history; letting it reach ordered output "
                  "(lists, files, panels) is latent nondeterminism -- "
                  "wrap the set in sorted()")

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                findings.append(self._finding(module, node.iter))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                if any(_is_set_expr(generator.iter)
                       for generator in node.generators) \
                        and not self._consumer_orderless(module, node):
                    findings.append(self._finding(module, node))
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name in ("list", "tuple", "enumerate", "iter") \
                        and node.args and _is_set_expr(node.args[0]) \
                        and not self._consumer_orderless(module, node):
                    findings.append(self._finding(module, node))
        return findings

    @staticmethod
    def _consumer_orderless(module: ModuleSource, node: ast.AST) -> bool:
        """Directly fed to an order-insensitive reducer (sorted, sum...)."""
        parent = module.parents.get(node)
        if isinstance(parent, ast.Call):
            callee = dotted_name(parent.func)
            if callee is not None and \
                    callee.rsplit(".", 1)[-1] in _ORDER_INSENSITIVE:
                return True
        return False

    def _finding(self, module: ModuleSource, node: ast.AST) -> Finding:
        return module.finding(
            self.id, node.lineno,
            "iteration over a set reaches ordered output; wrap it in "
            "sorted(...) (or reduce it with an order-insensitive "
            "aggregate)")


# ----------------------------------------------------------------------
# REP008 -- compiled-kernel imports must be soft


#: Root modules of optional compiled accelerators.  An unguarded import
#: of any of these turns an accelerator into a hard dependency.
_COMPILED_MODULES = frozenset({"numba", "cython", "Cython", "pyximport"})


@register
class SoftKernelImportRule(Rule):
    id = "REP008"
    name = "hard-kernel-import"
    motivation = ("compiled kernels (numba/cython) are optional "
                  "accelerators with a pure-NumPy fallback selected at "
                  "call time; an unguarded import would turn them into "
                  "hard dependencies and break the baked-in toolchain "
                  "environments that ship without a compiler")

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                roots = [alias.name.split(".", 1)[0]
                         for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                roots = [(node.module or "").split(".", 1)[0]]
            else:
                continue
            compiled = sorted(set(roots) & _COMPILED_MODULES)
            if compiled and not self._import_guarded(module, node):
                findings.append(module.finding(
                    self.id, node.lineno,
                    f"unguarded import of compiled module "
                    f"{', '.join(compiled)}; wrap it in try/except "
                    "ImportError and bind a pure-NumPy fallback symbol"))
        return findings

    @staticmethod
    def _import_guarded(module: ModuleSource, node: ast.AST) -> bool:
        """Inside the body of a try whose handlers catch ImportError."""
        current = node
        parent = module.parents.get(node)
        while parent is not None:
            if isinstance(parent, ast.Try) and current in parent.body:
                for handler in parent.handlers:
                    caught = handler.type
                    if caught is None:      # bare except
                        return True
                    types = (caught.elts if isinstance(caught, ast.Tuple)
                             else [caught])
                    for item in types:
                        name = (dotted_name(item) or "").rsplit(".", 1)[-1]
                        if name in ("ImportError", "ModuleNotFoundError",
                                    "Exception", "BaseException"):
                            return True
            current, parent = parent, module.parents.get(parent)
        return False
