"""Finding records and their text / JSON renderings."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: file the finding is in (repo-relative where possible).
        line: 1-based line number.
        rule: rule identifier (``REP001`` .. ``REP007``; ``REP000`` for
            problems with the lint machinery itself, e.g. a suppression
            without a justification).
        message: human-readable description of the violation.
    """

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def to_text(findings: Sequence[Finding]) -> str:
    """One ``path:line: RULE message`` line per finding plus a summary."""
    lines: List[str] = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def to_json(findings: Sequence[Finding]) -> str:
    """A JSON array of finding objects (stable field order)."""
    payload = [
        {"path": f.path, "line": f.line, "rule": f.rule,
         "message": f.message}
        for f in findings
    ]
    return json.dumps(payload, indent=2)
