"""``# repro: allow[REP00x] reason`` suppression comments.

A finding is suppressed by a comment naming its rule id, either
trailing the offending line::

    return hash(self._benchmarks)  # repro: allow[REP002] equality only

or standing alone on the line immediately above it::

    # repro: allow[REP005] bench output, single writer by construction
    Path(path).write_text(...)

Several ids may share one comment (``allow[REP002,REP006]``).  The
reason text is mandatory: an ``allow`` without a written justification
is itself reported (as ``REP000``) and cannot be suppressed -- the
whole point is that every exception carries its argument in the code.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

_ALLOW = re.compile(
    r"#\s*repro:\s*allow\[\s*([A-Za-z0-9_,\s]*)\s*\]\s*(.*)$")
#: What a well-formed rule id looks like (REP000 is reserved).
_RULE_ID = re.compile(r"^[A-Z]{3}\d{3}$")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``allow`` comment."""

    line: int                      #: line the comment sits on
    target_line: int               #: line the suppression applies to
    rules: FrozenSet[str]
    reason: str


class Suppressions:
    """All ``allow`` comments of one file, queryable by line."""

    def __init__(self, entries: List[Suppression]) -> None:
        self.entries = entries
        self._by_target: Dict[int, Set[str]] = {}
        for entry in entries:
            self._by_target.setdefault(entry.target_line,
                                       set()).update(entry.rules)

    @classmethod
    def scan(cls, text: str) -> "Suppressions":
        """Parse every ``allow`` comment in a source file.

        A comment that is the only thing on its line targets the next
        line; a trailing comment targets its own line.  Tokenization
        keeps ``#`` inside string literals from being misread.
        """
        entries: List[Suppression] = []
        lines = text.splitlines()

        def next_code_line(line: int) -> int:
            """First line after ``line`` that is not blank or comment,
            so an allow atop a comment block reaches the code below."""
            target = line + 1
            while target <= len(lines):
                stripped = lines[target - 1].strip()
                if stripped and not stripped.startswith("#"):
                    break
                target += 1
            return target

        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        try:
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _ALLOW.search(token.string)
                if match is None:
                    continue
                ids = frozenset(
                    part.strip() for part in match.group(1).split(",")
                    if part.strip())
                reason = match.group(2).strip()
                line = token.start[0]
                standalone = token.line[:token.start[1]].strip() == ""
                entries.append(Suppression(
                    line=line,
                    target_line=next_code_line(line) if standalone else line,
                    rules=ids, reason=reason))
        except tokenize.TokenError:
            pass        # unterminated source; the runner reports it
        return cls(entries)

    def allows(self, line: int, rule: str) -> bool:
        """Whether a finding of ``rule`` at ``line`` is suppressed."""
        return rule in self._by_target.get(line, ())

    def problems(self, known_rules: FrozenSet[str]) -> List[Tuple[int, str]]:
        """Malformed suppressions: ``(line, message)`` pairs.

        Reported as ``REP000`` by the runner and deliberately not
        themselves suppressible.
        """
        issues: List[Tuple[int, str]] = []
        for entry in self.entries:
            if not entry.rules:
                issues.append((entry.line,
                               "allow[] names no rule id"))
                continue
            for rule in sorted(entry.rules):
                if not _RULE_ID.match(rule):
                    issues.append(
                        (entry.line,
                         f"malformed rule id {rule!r} in allow[...]"))
                elif rule not in known_rules:
                    issues.append(
                        (entry.line,
                         f"unknown rule id {rule!r} in allow[...]"))
            if not entry.reason:
                issues.append(
                    (entry.line,
                     "suppression without a justification: write "
                     "`# repro: allow[REP00x] <why this is safe>`"))
        return issues
