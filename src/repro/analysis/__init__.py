"""Static analysis for the project's reproducibility invariants.

The reproduction rests on invariants that ordinary linters do not
know about: bit-identical determinism across processes, cache keys
that track every result-changing configuration field, vectorized /
scalar parity pairs with golden-reference test coverage, and atomic
persistence writes so concurrent readers never observe torn files.
Each of those has already bitten (the PR 1 per-process-salted
``hash()`` seeding bug, the ``-v2`` cache-key version bump) or is the
stated precondition for the next step (the concurrent estimation
daemon).  This package enforces them mechanically:

- :mod:`repro.analysis.findings` -- the :class:`Finding` record and
  text/JSON output;
- :mod:`repro.analysis.suppress` -- ``# repro: allow[REP00x] reason``
  suppression comments (a reason is mandatory);
- :mod:`repro.analysis.registry` -- rule base class, registry, and the
  parsed-module / project sources rules consume;
- :mod:`repro.analysis.rules` -- the project-specific rules REP001..8;
- :mod:`repro.analysis.runner` -- the file walker that ties it all
  together.

Run it as ``repro lint`` (or ``python -m repro.analysis``); the
tier-1 suite keeps the tree clean via ``tests/test_lint.py``.
"""

from repro.analysis.findings import Finding, to_json, to_text
from repro.analysis.registry import ModuleSource, Project, Rule, all_rules
from repro.analysis.runner import lint_paths, lint_project

__all__ = [
    "Finding",
    "ModuleSource",
    "Project",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_project",
    "to_json",
    "to_text",
]
