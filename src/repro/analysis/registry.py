"""Rule base class, the rule registry, and the sources rules consume."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Type

from repro.analysis.findings import Finding


class ModuleSource:
    """One parsed source file, shared by every rule that inspects it.

    Parsing and the parent map are lazy and memoised so a file is read
    and parsed once per lint run no matter how many rules look at it.
    """

    def __init__(self, path: Path, text: str,
                 display: Optional[str] = None) -> None:
        self.path = Path(path)
        self.text = text
        self.display = display if display is not None else str(path)
        self._tree: Optional[ast.Module] = None
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    @classmethod
    def read(cls, path: Path, root: Optional[Path] = None) -> "ModuleSource":
        path = Path(path)
        display = str(path)
        if root is not None:
            try:
                display = str(path.relative_to(root))
            except ValueError:
                pass
        return cls(path, path.read_text(), display)

    @property
    def tree(self) -> ast.Module:
        """The parsed module (raises ``SyntaxError`` on broken files)."""
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=str(self.path))
        return self._tree

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """child -> parent map over the whole tree (for context checks)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def finding(self, rule: str, line: int, message: str) -> Finding:
        return Finding(self.display, line, rule, message)


class Project:
    """Everything a cross-file rule may need: sources plus test texts.

    ``tests`` carries raw text only -- reference checks (does any test
    mention this name?) are textual by design, so fixture snippets
    inside test strings count as coverage anchors too.
    """

    def __init__(self, modules: Sequence[ModuleSource],
                 tests: Sequence[ModuleSource] = ()) -> None:
        self.modules = list(modules)
        self.tests = list(tests)

    def tests_mention(self, name: str) -> bool:
        """Whether any test file contains ``name`` as a whole word."""
        import re

        pattern = re.compile(rf"\b{re.escape(name)}\b")
        return any(pattern.search(test.text) for test in self.tests)


class Rule:
    """Base class: override :meth:`check_module`, :meth:`check_project`,
    or both.

    Attributes:
        id: stable identifier (``REPnnn``), used in output and in
            ``allow[...]`` suppressions.
        name: short kebab-case label.
        motivation: one line on the historical bug / upcoming need the
            rule guards against (shown by ``repro lint --rules``).
    """

    id = "REP000"
    name = "base"
    motivation = ""

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        """Per-file findings (most rules)."""
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        """Whole-tree findings (cross-file rules such as parity-pair)."""
        return ()


_REGISTRY: List[Type[Rule]] = []


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default rule set."""
    if any(existing.id == cls.id for existing in _REGISTRY):
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY.append(cls)
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    # Importing the rules module populates the registry on first use.
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [cls() for cls in sorted(_REGISTRY, key=lambda c: c.id)]
