"""``python -m repro.analysis`` -- the linter without the full CLI.

Delegates to the same implementation as ``repro lint``; see
:func:`repro.cli.main`.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["lint"] + sys.argv[1:]))
