"""The lint driver: walk files, run rules, apply suppressions."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleSource, Project, Rule, all_rules
from repro.analysis.suppress import Suppressions

PathLike = Union[str, Path]


def iter_python_files(root: PathLike) -> List[Path]:
    """Every ``.py`` file under ``root`` (or ``root`` itself), sorted."""
    root = Path(root)
    if root.is_file():
        return [root]
    return sorted(path for path in root.rglob("*.py")
                  if "__pycache__" not in path.parts)


def load_sources(paths: Iterable[PathLike],
                 display_root: Optional[PathLike] = None
                 ) -> List[ModuleSource]:
    root = Path(display_root) if display_root is not None else None
    modules: List[ModuleSource] = []
    for path in paths:
        for file in iter_python_files(path):
            modules.append(ModuleSource.read(file, root))
    return modules


def lint_project(project: Project,
                 rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """All findings over a project, suppressed and sorted.

    Suppression comments apply to per-file *and* cross-file findings
    (both carry real source locations).  Problems with the suppressions
    themselves -- no reason given, unknown rule id -- surface as
    ``REP000`` and are deliberately not suppressible.
    """
    if rules is None:
        rules = all_rules()
    known = frozenset(rule.id for rule in rules)
    raw: List[Finding] = []
    meta: List[Finding] = []
    suppressions = {}
    for module in project.modules:
        suppressions[module.display] = Suppressions.scan(module.text)
        for line, message in \
                suppressions[module.display].problems(known):
            meta.append(Finding(module.display, line, "REP000", message))
        try:
            module.tree
        except SyntaxError as error:
            meta.append(Finding(module.display, error.lineno or 1, "REP000",
                                f"syntax error: {error.msg}"))
            continue
        for rule in rules:
            raw.extend(rule.check_module(module))
    for rule in rules:
        raw.extend(rule.check_project(project))
    kept = [finding for finding in raw
            if not suppressions.get(finding.path,
                                    Suppressions([])).allows(finding.line,
                                                             finding.rule)]
    return sorted(set(kept + meta))


def lint_paths(src_paths: Sequence[PathLike],
               tests_root: Optional[PathLike] = None,
               display_root: Optional[PathLike] = None,
               rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint source trees, with an optional tests tree for reference
    checks (REP004 needs to know what the tests mention)."""
    modules = load_sources(src_paths, display_root)
    tests = (load_sources([tests_root], display_root)
             if tests_root is not None else [])
    return lint_project(Project(modules, tests), rules)
