"""Figure 5: 1/cv on the full BADCO population, three metrics.

A view of the same quantity as Fig. 4, restricted to the
BADCO-population source, comparing metrics side by side.  The paper's
headline observations: the *sign* of 1/cv agrees across metrics (all
three rank the policies identically) while its *magnitude* differs, so
the required sample size W = 8 cv^2 is metric-dependent (the RND-FIFO
example: ~50 workloads under IPCT vs ~32 under HSU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import delta_column_from_matrices
from repro.core.confidence import required_sample_size
from repro.core.delta import DeltaVariable, delta_statistics
from repro.core.metrics import METRICS
from repro.experiments.common import ExperimentContext, POLICY_PAIRS, Scale


@dataclass
class Fig5Result:
    cores: int
    bars: Dict[Tuple[str, str], Dict[str, float]]  # [(X,Y)][metric] = 1/cv

    def sign_consistent_pairs(self) -> List[Tuple[str, str]]:
        """Pairs where all metrics agree on who wins."""
        consistent = []
        for pair, by_metric in self.bars.items():
            signs = {v > 0 for v in by_metric.values()}
            if len(signs) == 1:
                consistent.append(pair)
        return consistent

    def required_sizes(self) -> Dict[Tuple[str, str], Dict[str, int]]:
        """W = 8 cv^2 per pair and metric."""
        sizes: Dict[Tuple[str, str], Dict[str, int]] = {}
        for pair, by_metric in self.bars.items():
            sizes[pair] = {}
            for name, icv in by_metric.items():
                if icv != 0:
                    sizes[pair][name] = required_sample_size(1.0 / icv)
        return sizes

    def rows(self) -> List[str]:
        names = [m.name for m in METRICS]
        lines = [f"{'pair':>12}  " + "  ".join(f"{n:>8}" for n in names)]
        for pair, by_metric in self.bars.items():
            x, y = pair
            lines.append(f"{x + '>' + y:>12}  " + "  ".join(
                f"{by_metric[n]:8.3f}" for n in names))
        return lines


def run(scale: Scale = Scale.MEDIUM,
        context: Optional[ExperimentContext] = None,
        cores: int = 4,
        pairs: Sequence[Tuple[str, str]] = POLICY_PAIRS,
        backend: str = "badco") -> Fig5Result:
    context = context or ExperimentContext(scale)
    results = context.population_results(cores, backend)
    workloads = list(context.population(cores))
    policies = sorted({p for pair in pairs for p in pair})
    _, matrices = results.columnar_panel(policies, workloads)
    bars: Dict[Tuple[str, str], Dict[str, float]] = {}
    for pair in pairs:
        x, y = pair
        bars[pair] = {}
        for metric in METRICS:
            variable = DeltaVariable(metric, results.reference)
            column = delta_column_from_matrices(
                variable, matrices[x], matrices[y])
            bars[pair][metric.name] = \
                delta_statistics(column.values).inverse_cv
    return Fig5Result(cores=cores, bars=bars)


def main() -> None:
    result = run()
    print("Figure 5: 1/cv on the BADCO population, per metric")
    for row in result.rows():
        print(row)
    print("sign-consistent pairs:",
          [f"{x}>{y}" for x, y in result.sign_consistent_pairs()])


if __name__ == "__main__":
    main()
