"""Figure 2: detailed-simulator CPI vs BADCO CPI.

The paper plots, for every benchmark in each of 250 workload
combinations, the Zesto CPI against the BADCO CPI, and reports the
average CPI error (4.59 / 3.98 / 4.09 % for 2/4/8 cores, max < 22 %)
and the much smaller *speedup* error (0.66 / 0.61 / 1.43 %).  We
reproduce both statistics on the detailed sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import ExperimentContext, Scale


@dataclass
class Fig2CoreResult:
    """Accuracy statistics for one core count."""

    cores: int
    points: List[Tuple[float, float]]       # (badco CPI, detailed CPI)
    mean_cpi_error: float                   # percent
    max_cpi_error: float                    # percent
    mean_speedup_error: float               # percent, across policy pairs
    badco_underestimates: float             # fraction of points below bisector


@dataclass
class Fig2Result:
    per_cores: Dict[int, Fig2CoreResult]

    def rows(self) -> List[str]:
        lines = [f"{'cores':>5}  {'mean CPI err %':>14}  {'max CPI err %':>13}  "
                 f"{'mean SU err %':>13}  {'CPI underest.':>13}"]
        for cores in sorted(self.per_cores):
            r = self.per_cores[cores]
            lines.append(
                f"{cores:5d}  {r.mean_cpi_error:14.2f}  {r.max_cpi_error:13.2f}  "
                f"{r.mean_speedup_error:13.2f}  {r.badco_underestimates:13.2f}")
        return lines


def _speedup_errors(detailed, badco, baseline: str, workloads) -> List[float]:
    """Per-policy-pair IPC-throughput speedup errors (percent)."""
    errors = []
    policies = [p for p in detailed.policies if p != baseline]
    for policy in policies:
        for workload in workloads:
            det_base = sum(detailed.ipcs(baseline, workload))
            det_new = sum(detailed.ipcs(policy, workload))
            bad_base = sum(badco.ipcs(baseline, workload))
            bad_new = sum(badco.ipcs(policy, workload))
            su_det = det_new / det_base
            su_bad = bad_new / bad_base
            errors.append(abs(su_bad - su_det) / su_det * 100.0)
    return errors


def run(scale: Scale = Scale.MEDIUM,
        context: Optional[ExperimentContext] = None,
        core_counts: Tuple[int, ...] = (2, 4, 8),
        approx_backend: str = "badco") -> Fig2Result:
    context = context or ExperimentContext(scale)
    per_cores: Dict[int, Fig2CoreResult] = {}
    for cores in core_counts:
        sample = context.detailed_sample(cores)
        detailed = context.sample_results(cores)
        badco = context.results_for(cores, sample, approx_backend)
        points: List[Tuple[float, float]] = []
        errors: List[float] = []
        under = 0
        for workload in sample:
            for policy in ("LRU",):
                det = detailed.ipcs(policy, workload)
                bad = badco.ipcs(policy, workload)
                for ipc_d, ipc_b in zip(det, bad):
                    cpi_d = 1.0 / ipc_d
                    cpi_b = 1.0 / ipc_b
                    points.append((cpi_b, cpi_d))
                    errors.append(abs(cpi_b - cpi_d) / cpi_d * 100.0)
                    if cpi_b < cpi_d:
                        under += 1
        speedup_errors = _speedup_errors(detailed, badco, "LRU", sample)
        per_cores[cores] = Fig2CoreResult(
            cores=cores,
            points=points,
            mean_cpi_error=sum(errors) / len(errors),
            max_cpi_error=max(errors),
            mean_speedup_error=sum(speedup_errors) / len(speedup_errors),
            badco_underestimates=under / len(points),
        )
    return Fig2Result(per_cores)


def main() -> None:
    result = run()
    print("Figure 2: Zesto-analogue CPI vs BADCO CPI")
    for row in result.rows():
        print(row)


if __name__ == "__main__":
    main()
