"""Table IV: classifying the benchmarks by memory intensity (MPKI).

The paper classifies its 22 SPEC benchmarks into Low (MPKI < 1),
Medium (< 5) and High (>= 5) by LLC misses per kilo-instruction.  We
measure each synthetic benchmark's single-thread MPKI on the reference
uncore with the detailed simulator (post-warmup, so compulsory misses
of the first pass do not dominate the short traces) and regenerate the
classification, which the benchmark-stratification method (Fig. 6)
then uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.generator import cached_trace
from repro.bench.spec import MpkiClass, TABLE_IV
from repro.core.classification import classify_benchmarks
from repro.cpu.core import DetailedCore
from repro.cpu.resources import default_core_config
from repro.experiments.common import ExperimentContext, Scale
from repro.mem.uncore import Uncore, uncore_config_for_cores


def measure_mpki(benchmark: str, trace_length: int, seed: int = 0,
                 warmup_fraction: float = 0.25) -> float:
    """Single-thread LLC MPKI on the reference (2-core LRU) uncore."""
    uncore = Uncore(uncore_config_for_cores(1, "LRU"), seed=seed)

    def access(address: int, now: int, is_write: bool, pc: int,
               is_prefetch: bool = False) -> int:
        return uncore.access(0, address, now, is_write, pc, is_prefetch)

    trace = cached_trace(benchmark, trace_length, seed)
    core = DetailedCore(0, default_core_config(), trace, access)
    warmup = int(trace_length * warmup_fraction)
    while core.position < warmup:
        core.advance()
    misses_before = uncore.llc_demand_misses
    executed_before = core.executed
    while not core.done:
        core.advance()
    misses = uncore.llc_demand_misses - misses_before
    kilo_instructions = (core.executed - executed_before) / 1000.0
    return misses / kilo_instructions


@dataclass
class Table4Result:
    mpki: Dict[str, float]
    classes: Dict[str, MpkiClass]

    def matches_paper(self) -> Dict[str, bool]:
        """Per-benchmark: did we land in the paper's Table IV class?"""
        paper = {name: cls for cls, names in TABLE_IV.items()
                 for name in names}
        return {name: self.classes[name] == paper[name]
                for name in self.mpki}

    def rows(self) -> List[str]:
        lines = [f"{'benchmark':>12}  {'MPKI':>8}  {'class':>7}  {'paper':>7}"]
        paper = {name: cls for cls, names in TABLE_IV.items()
                 for name in names}
        for name in sorted(self.mpki, key=lambda n: self.mpki[n]):
            lines.append(
                f"{name:>12}  {self.mpki[name]:8.2f}  "
                f"{self.classes[name].value:>7}  {paper[name].value:>7}")
        return lines


def run(scale: Scale = Scale.MEDIUM,
        context: Optional[ExperimentContext] = None) -> Table4Result:
    context = context or ExperimentContext(scale)
    length = context.parameters.trace_length
    mpki = {name: measure_mpki(name, length, seed=context.seed)
            for name in context.benchmarks}
    return Table4Result(mpki=mpki, classes=classify_benchmarks(mpki))


def main() -> None:
    result = run()
    print("Table IV: benchmark classification by MPKI")
    for row in result.rows():
        print(row)
    matches = result.matches_paper()
    print(f"matching the paper's classes: {sum(matches.values())}/{len(matches)}")


if __name__ == "__main__":
    main()
