"""Figure 7: the *actual* degree of confidence, judged by detailed sim.

Figure 6 isolates sampling error by judging samples with BADCO itself.
Figure 7 closes the loop: samples are still *selected* using BADCO
(workload stratification builds its strata from BADCO's d(w)), but the
verdict on each sample -- does DIP beat LRU? -- is computed from
detailed-simulation IPCs.  The paper does this for DIP vs LRU under
IPCT, 100 samples per point, on the full 253-workload 2-core population
and a 250-workload sample for 4 cores.

Expected shape: the ordering of methods survives the change of judge
(workload stratification still on top), with somewhat lower confidence
than the BADCO-judged Fig. 6 because approximate-simulation error now
counts against the sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.classification import class_labels
from repro.core.columnar import WorkloadIndex
from repro.core.delta import DeltaVariable
from repro.core.estimator import ConfidenceEstimator
from repro.core.metrics import IPCT, ThroughputMetric
from repro.core.population import WorkloadPopulation
from repro.core.sampling import (
    BenchmarkStratification,
    SimpleRandomSampling,
    WorkloadStratification,
)
from repro.experiments.common import ExperimentContext, Scale
from repro.experiments.table4_classification import run as run_table4

DEFAULT_SIZES = (10, 20, 30, 40, 50)


@dataclass
class Fig7Result:
    pair: Tuple[str, str]
    metric: str
    sample_sizes: Sequence[int]
    # curves[cores][method_name] = [confidence per size]
    curves: Dict[int, Dict[str, List[float]]]

    def rows(self) -> List[str]:
        lines = []
        for cores, by_method in sorted(self.curves.items()):
            lines.append(f"--- {cores} cores ---")
            lines.append(f"{'W':>5}  " + "  ".join(
                f"{name:>16}" for name in by_method))
            for i, w in enumerate(self.sample_sizes):
                lines.append(f"{w:5d}  " + "  ".join(
                    f"{values[i]:16.3f}" for values in by_method.values()))
        return lines


def run(scale: Scale = Scale.MEDIUM,
        context: Optional[ExperimentContext] = None,
        pair: Tuple[str, str] = ("LRU", "DIP"),
        metric: ThroughputMetric = IPCT,
        core_counts: Sequence[int] = (2, 4),
        sample_sizes: Sequence[int] = DEFAULT_SIZES,
        approx_backend: str = "badco") -> Fig7Result:
    context = context or ExperimentContext(scale)
    x, y = pair
    classes = class_labels(run_table4(scale, context).mpki)
    curves: Dict[int, Dict[str, List[float]]] = {}
    for cores in core_counts:
        # The sampling frame is the detailed-simulated workload set (the
        # paper's 253 / 250 workloads): detailed IPCs exist for all of it.
        sample_workloads = context.detailed_sample(cores)
        detailed = context.sample_results(cores)
        badco = context.results_for(cores, sample_workloads, approx_backend)
        # The sampling frame *is* the detailed-simulated subset.
        frame = WorkloadPopulation.from_workloads(
            sample_workloads, benchmarks=context.benchmarks)
        index = WorkloadIndex.from_population(frame)
        variable_detailed = DeltaVariable(metric, detailed.reference)
        delta_detailed = variable_detailed.column(
            index, detailed.ipc_table(x), detailed.ipc_table(y))
        variable_badco = DeltaVariable(metric, badco.reference)
        delta_badco = variable_badco.column(
            index, badco.ipc_table(x), badco.ipc_table(y))
        # Judge with detailed IPCs; select (stratify) with BADCO's d(w).
        estimator = ConfidenceEstimator(
            frame, delta_detailed,
            draws=min(context.parameters.draws, 1000))
        stratifier = WorkloadStratification.from_column(
            delta_badco, min_stratum=max(4, len(sample_workloads) // 10))
        # The frame is the detailed-simulated subset, never exhaustive,
        # so balanced sampling is skipped -- exactly as the paper does
        # for its 4- and 8-core Fig. 7 results (footnote 6).
        methods = (
            SimpleRandomSampling(),
            BenchmarkStratification(classes),
            stratifier,
        )
        curves[cores] = {
            method.name: list(estimator.curve(method, sample_sizes,
                                              seed=context.seed).confidence)
            for method in methods}
    return Fig7Result(pair=pair, metric=metric.name,
                      sample_sizes=tuple(sample_sizes), curves=curves)


def main() -> None:
    result = run()
    print(f"Figure 7: detailed-sim-judged confidence "
          f"({result.pair[1]} > {result.pair[0]}, {result.metric})")
    for row in result.rows():
        print(row)


if __name__ == "__main__":
    main()
