"""Extension 1: speedup accuracy under the four sampling methods.

The paper's closing sentence leaves open "the problem of defining
workload samples that provide accurate speedups with high probability".
This experiment attacks it with the paper's own machinery: for DIP vs
LRU, how often does each sampling method's *speedup estimate* land
within epsilon of the population speedup?

Expected shape (and what this reproduction finds): workload
stratification, built from d(w), transfers much of its advantage from
the sign question to the magnitude question, because its strata make
the weighted estimator of D = mean d(w) low-variance -- but the
advantage narrows as epsilon tightens, which is presumably why the
authors called the problem open.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.classification import class_labels
from repro.core.columnar import WorkloadIndex
from repro.core.delta import DeltaVariable
from repro.core.metrics import IPCT, ThroughputMetric
from repro.core.sampling import (
    BalancedRandomSampling,
    BenchmarkStratification,
    SimpleRandomSampling,
    WorkloadStratification,
)
from repro.core.speedup_accuracy import SpeedupAccuracyEvaluator
from repro.experiments.common import ExperimentContext, Scale
from repro.experiments.table4_classification import run as run_table4

DEFAULT_SIZES = (10, 20, 40, 80, 160)


@dataclass
class Ext1Result:
    pair: Tuple[str, str]
    metric: str
    epsilon: float
    true_speedup: float
    sample_sizes: Sequence[int]
    hit_rates: Dict[str, List[float]]
    mean_errors: Dict[str, List[float]]

    def rows(self) -> List[str]:
        lines = [f"true speedup: {self.true_speedup:.4f} "
                 f"(epsilon = {self.epsilon:.3f})",
                 f"{'W':>5}  " + "  ".join(f"{m:>16}" for m in self.hit_rates)]
        for i, w in enumerate(self.sample_sizes):
            lines.append(f"{w:5d}  " + "  ".join(
                f"{series[i]:16.3f}" for series in self.hit_rates.values()))
        return lines


def run(scale: Scale = Scale.MEDIUM,
        context: Optional[ExperimentContext] = None,
        cores: int = 2,
        pair: Tuple[str, str] = ("LRU", "DIP"),
        metric: ThroughputMetric = IPCT,
        epsilon: float = 0.01,
        sample_sizes: Sequence[int] = DEFAULT_SIZES,
        backend: str = "badco") -> Ext1Result:
    context = context or ExperimentContext(scale)
    results = context.population_results(cores, backend)
    population = context.population(cores)
    x, y = pair
    evaluator = SpeedupAccuracyEvaluator(
        population, results.ipc_table(x), results.ipc_table(y), metric,
        results.reference, draws=min(context.parameters.draws, 1000))
    variable = DeltaVariable(metric, results.reference)
    delta = variable.column(WorkloadIndex.from_population(population),
                            results.ipc_table(x), results.ipc_table(y))
    classes = class_labels(run_table4(scale, context).mpki)
    methods = [SimpleRandomSampling()]
    if population.is_exhaustive:
        methods.append(BalancedRandomSampling())
    methods.append(BenchmarkStratification(classes))
    methods.append(WorkloadStratification.from_column(
        delta, min_stratum=max(10, len(population) // 40)))
    hit_rates: Dict[str, List[float]] = {}
    mean_errors: Dict[str, List[float]] = {}
    for method in methods:
        points = evaluator.curve(method, sample_sizes, epsilon,
                                 seed=context.seed)
        hit_rates[method.name] = [p.hit_rate for p in points]
        mean_errors[method.name] = [p.mean_abs_error for p in points]
    return Ext1Result(pair=pair, metric=metric.name, epsilon=epsilon,
                      true_speedup=evaluator.true_speedup,
                      sample_sizes=tuple(sample_sizes),
                      hit_rates=hit_rates, mean_errors=mean_errors)


def main() -> None:
    result = run()
    print(f"Extension 1: speedup accuracy, {result.pair[1]} vs "
          f"{result.pair[0]} ({result.metric})")
    for row in result.rows():
        print(row)


if __name__ == "__main__":
    main()
