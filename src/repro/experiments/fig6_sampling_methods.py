"""Figure 6: comparing the four sampling methods.

For four policy pairs (DIP>LRU, DRRIP>LRU, DRRIP>DIP, FIFO>RND), the
paper measures -- on the 4-core BADCO population under the IPCT metric,
10000 resamples -- the degree of confidence of simple random, balanced
random, benchmark-stratified and workload-stratified samples as a
function of sample size.

Expected shape: workload stratification >> balanced random >= benchmark
stratification ~ random; workload stratification reaches ~100 %
confidence with tens of workloads where random sampling needs hundreds
(DIP vs LRU: 50 vs 800 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.classification import class_labels
from repro.core.delta import DeltaVariable
from repro.core.estimator import PairedConfidenceEstimator
from repro.core.metrics import IPCT, ThroughputMetric
from repro.core.sampling import (
    BalancedRandomSampling,
    BenchmarkStratification,
    SimpleRandomSampling,
    WorkloadStratification,
)
from repro.experiments.common import ExperimentContext, Scale
from repro.experiments.table4_classification import run as run_table4

#: The four pairs of the paper's Fig. 6, as (X, Y) with "Y > X" plotted.
FIG6_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("LRU", "DIP"), ("LRU", "DRRIP"), ("DIP", "DRRIP"), ("FIFO", "RND"))

DEFAULT_SIZES = (10, 20, 30, 40, 60, 100, 160, 240, 400)


@dataclass
class Fig6Result:
    metric: str
    cores: int
    sample_sizes: Sequence[int]
    # curves[(X, Y)][method_name] = [confidence per sample size]
    curves: Dict[Tuple[str, str], Dict[str, List[float]]]
    strata_counts: Dict[Tuple[str, str], int]

    def rows(self) -> List[str]:
        lines = []
        for pair, by_method in self.curves.items():
            x, y = pair
            lines.append(f"--- {y} > {x} "
                         f"(workload strata: {self.strata_counts[pair]}) ---")
            lines.append(f"{'W':>5}  " + "  ".join(
                f"{name:>16}" for name in by_method))
            for i, w in enumerate(self.sample_sizes):
                lines.append(f"{w:5d}  " + "  ".join(
                    f"{values[i]:16.3f}" for values in by_method.values()))
        return lines


def run(scale: Scale = Scale.MEDIUM,
        context: Optional[ExperimentContext] = None,
        cores: int = 4,
        metric: ThroughputMetric = IPCT,
        pairs: Sequence[Tuple[str, str]] = FIG6_PAIRS,
        sample_sizes: Sequence[int] = DEFAULT_SIZES,
        backend: str = "badco") -> Fig6Result:
    context = context or ExperimentContext(scale)
    results = context.population_results(cores, backend)
    population = context.population(cores)
    classes = class_labels(run_table4(scale, context).mpki)
    curves: Dict[Tuple[str, str], Dict[str, List[float]]] = {}
    index = population.index
    variable = DeltaVariable(metric, results.reference)
    deltas = {
        pair: variable.column(index, results.ipc_table(pair[0]),
                              results.ipc_table(pair[1]))
        for pair in pairs}
    # The pair-independent methods (their draws never look at d(w))
    # share one row batch and one gather across all pairs; workload
    # stratification derives its strata from each pair's own delta
    # column, so it keeps per-pair rows but still batches the gather
    # and the weighted-mean reduction across pairs (`pair_curves`).
    shared_methods = [SimpleRandomSampling()]
    if population.is_exhaustive:
        # Balanced sampling needs the full population (footnote 6).
        shared_methods.append(BalancedRandomSampling())
    shared_methods.append(BenchmarkStratification(classes))
    paired = PairedConfidenceEstimator(population, deltas,
                                       draws=context.parameters.draws)
    shared_curves = {
        method.name: paired.curve(method, sample_sizes, seed=context.seed)
        for method in shared_methods}
    stratifiers = {
        pair: WorkloadStratification.from_column(
            deltas[pair], min_stratum=max(10, len(population) // 40))
        for pair in pairs}
    strata_counts = {pair: stratifier.num_strata
                     for pair, stratifier in stratifiers.items()}
    strata_curves = paired.pair_curves(stratifiers, sample_sizes,
                                       seed=context.seed)
    for pair in pairs:
        by_method = {name: list(per_pair[pair].confidence)
                     for name, per_pair in shared_curves.items()}
        by_method[stratifiers[pair].name] = list(
            strata_curves[pair].confidence)
        curves[pair] = by_method
    return Fig6Result(metric=metric.name, cores=cores,
                      sample_sizes=tuple(sample_sizes), curves=curves,
                      strata_counts=strata_counts)


def main() -> None:
    result = run()
    print(f"Figure 6: sampling-method confidence "
          f"({result.cores} cores, {result.metric})")
    for row in result.rows():
        print(row)


if __name__ == "__main__":
    main()
