"""Figures 4 and 5: the inverse coefficient of variation 1/cv.

Figure 4 plots 1/cv for each of the 10 policy pairs and each metric on
the 4-core machine, measured three ways: with the detailed simulator on
the 250-workload sample, with BADCO on the same sample, and with BADCO
on the full 12650-workload population.  Figure 5 plots the BADCO
population bars for the three metrics side by side.

The shapes the paper reports: the sign of 1/cv says which policy wins
(consistent across measurement methods for clearly-separated pairs);
|1/cv| near or above 1 for clear pairs (LRU vs FIFO/RND), much below 1
for close pairs (LRU vs DIP, DIP vs DRRIP); sample-vs-population
estimates agree for clear pairs and wobble for close ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import delta_column_from_matrices
from repro.core.delta import DeltaVariable, delta_statistics
from repro.core.metrics import METRICS, ThroughputMetric
from repro.core.workload import Workload
from repro.experiments.common import ExperimentContext, POLICY_PAIRS, Scale
from repro.sim.results import PopulationResults

#: Measurement sources, in the order of Fig. 4's bar groups.
SOURCES = ("detailed-sample", "badco-sample", "badco-population")


def inverse_cv(results: PopulationResults, workloads: Sequence[Workload],
               policy_x: str, policy_y: str,
               metric: ThroughputMetric) -> float:
    """1/cv of d(w) for Y-vs-X over the given workloads."""
    _, matrices = results.columnar_panel((policy_x, policy_y), workloads)
    variable = DeltaVariable(metric, results.reference)
    column = delta_column_from_matrices(
        variable, matrices[policy_x], matrices[policy_y])
    return delta_statistics(column.values).inverse_cv


@dataclass
class Fig4Result:
    """1/cv per (pair, metric, source)."""

    cores: int
    bars: Dict[Tuple[str, str], Dict[str, Dict[str, float]]]
    # bars[(X, Y)][metric_name][source] = 1/cv

    def rows(self) -> List[str]:
        lines = []
        for metric in METRICS:
            lines.append(f"--- {metric.name} ---")
            header = f"{'pair':>12}  " + "  ".join(f"{s:>16}" for s in SOURCES)
            lines.append(header)
            for pair, by_metric in self.bars.items():
                x, y = pair
                cells = by_metric[metric.name]
                lines.append(f"{x + '>' + y:>12}  " + "  ".join(
                    f"{cells[s]:16.3f}" for s in SOURCES))
        return lines


def run(scale: Scale = Scale.MEDIUM,
        context: Optional[ExperimentContext] = None,
        cores: int = 4,
        pairs: Sequence[Tuple[str, str]] = POLICY_PAIRS,
        sources: Sequence[str] = SOURCES,
        approx_backend: str = "badco") -> Fig4Result:
    context = context or ExperimentContext(scale)
    sample = context.detailed_sample(cores)
    bars: Dict[Tuple[str, str], Dict[str, Dict[str, float]]] = {}
    tables: Dict[str, Tuple[PopulationResults, Sequence[Workload]]] = {}
    if "detailed-sample" in sources:
        tables["detailed-sample"] = (context.sample_results(cores), sample)
    if "badco-sample" in sources:
        tables["badco-sample"] = (
            context.results_for(cores, sample, approx_backend), sample)
    if "badco-population" in sources:
        tables["badco-population"] = (
            context.population_results(cores, approx_backend),
            list(context.population(cores)))
    # One columnar panel per source: every policy's IPC matrix is built
    # (and validated) once, then all pair x metric cells are array ops.
    policies = sorted({p for pair in pairs for p in pair})
    panels = {
        source: (results, results.columnar_panel(policies, workloads)[1])
        for source, (results, workloads) in tables.items()}
    for pair in pairs:
        x, y = pair
        bars[pair] = {}
        for metric in METRICS:
            cells = {}
            for source, (results, matrices) in panels.items():
                variable = DeltaVariable(metric, results.reference)
                column = delta_column_from_matrices(
                    variable, matrices[x], matrices[y])
                cells[source] = delta_statistics(column.values).inverse_cv
            bars[pair][metric.name] = cells
    return Fig4Result(cores=cores, bars=bars)


def main() -> None:
    result = run()
    print("Figure 4: 1/cv per policy pair, metric and measurement source")
    for row in result.rows():
        print(row)


if __name__ == "__main__":
    main()
