"""Figure 1: degree of confidence vs (1/cv) * sqrt(W/2).

Pure analytics: the curve conf(x) = (1 + erf(x)) / 2 of eq. (5),
saturating near |x| = 2 -- the observation behind the W = 8 cv^2 rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.confidence import confidence_model_curve


@dataclass(frozen=True)
class Fig1Result:
    """The Fig. 1 series plus its saturation diagnostics."""

    points: List[Tuple[float, float]]
    saturation_low: float    # conf at x = -2
    saturation_high: float   # conf at x = +2

    def rows(self) -> List[str]:
        lines = [f"{'x':>6}  {'confidence':>10}"]
        for x, conf in self.points:
            lines.append(f"{x:6.2f}  {conf:10.4f}")
        return lines


def run(steps: int = 33) -> Fig1Result:
    """Compute the Fig. 1 curve over x in [-2, 2]."""
    xs = [-2.0 + 4.0 * i / (steps - 1) for i in range(steps)]
    points = confidence_model_curve(xs)
    by_x = dict(points)
    return Fig1Result(points=points,
                      saturation_low=by_x[-2.0],
                      saturation_high=by_x[2.0])


def main() -> None:
    result = run()
    print("Figure 1: confidence as a function of (1/cv) sqrt(W/2)")
    for row in result.rows():
        print(row)
    print(f"saturation: conf(-2) = {result.saturation_low:.4f}, "
          f"conf(+2) = {result.saturation_high:.4f}")


if __name__ == "__main__":
    main()
