"""Experiment drivers: one per table / figure of the paper.

Each driver module exposes a ``run(scale, ...)`` function returning a
structured result object with the same rows / series the paper reports,
plus a ``main()`` that prints it.  The benchmark harness under
``benchmarks/`` calls these drivers; ``EXPERIMENTS.md`` records
paper-vs-measured values.

Shared infrastructure (scales, campaign caching, the policy list) lives
in :mod:`repro.experiments.common`.
"""

from repro.experiments.common import (
    ExperimentContext,
    POLICY_PAIRS,
    Scale,
)

__all__ = ["ExperimentContext", "POLICY_PAIRS", "Scale"]
