"""Section VII-A: the simulation-overhead worked example.

The paper compares the CPU-hours needed to reach a given confidence on
DIP vs LRU (4 cores, 100 M instructions per thread):

- balanced random, 30 workloads  -> 75 % confidence, 136 cpu*h;
- balanced random, 120 workloads -> 90 % confidence, 544 cpu*h
  (300 % extra simulation for +15 points);
- workload stratification, 30 workloads -> 99 % confidence for
  136 cpu*h of detailed simulation + ~101 cpu*h of BADCO work
  (~74 % extra) -- 4x cheaper per unit of confidence than growing the
  random sample.

We reproduce the arithmetic two ways: with the paper's published MIPS
numbers (exact reproduction of the printed cpu*hours), and with the
MIPS measured on *this* machine's simulators (Table III experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.planner import OverheadModel
from repro.experiments.common import ExperimentContext, Scale
from repro.experiments.table3_speedup import run as run_table3

#: The paper's Table III MIPS numbers.
PAPER_MIPS = {
    "detailed_single": 0.170,
    "detailed_4core": 0.049,
    "badco_4core": 1.89,
}


@dataclass
class OverheadScenario:
    label: str
    workloads: int
    confidence: float
    detailed_hours: float
    extra_hours: float

    @property
    def total_hours(self) -> float:
        return self.detailed_hours + self.extra_hours


@dataclass
class Sec7Result:
    scenarios: List[OverheadScenario]
    stratification_extra_fraction: float

    def rows(self) -> List[str]:
        lines = [f"{'scenario':>28}  {'W':>4}  {'conf':>5}  "
                 f"{'detailed h':>10}  {'extra h':>8}  {'total h':>8}"]
        for s in self.scenarios:
            lines.append(
                f"{s.label:>28}  {s.workloads:4d}  {s.confidence:5.2f}  "
                f"{s.detailed_hours:10.1f}  {s.extra_hours:8.1f}  "
                f"{s.total_hours:8.1f}")
        return lines


def run_paper_numbers(instructions: float = 100e6, cores: int = 4,
                      benchmarks: int = 22) -> Sec7Result:
    """The exact Section VII-A arithmetic with the paper's MIPS."""
    model = OverheadModel(
        instructions_per_thread=instructions,
        cores=cores,
        benchmarks=benchmarks,
        detailed_mips=PAPER_MIPS["detailed_4core"],
        detailed_single_mips=PAPER_MIPS["detailed_single"],
        approx_mips=PAPER_MIPS["badco_4core"],
    )
    scenarios = [
        OverheadScenario("balanced random (75 %)", 30, 0.75,
                         model.detailed_hours(30), 0.0),
        OverheadScenario("balanced random (90 %)", 120, 0.90,
                         model.detailed_hours(120), 0.0),
        OverheadScenario("workload strata (99 %)", 30, 0.99,
                         model.detailed_hours(30),
                         model.model_building_hours()
                         + model.approx_hours(800)),
    ]
    return Sec7Result(
        scenarios=scenarios,
        stratification_extra_fraction=model.stratification_overhead(30, 800))


def run(scale: Scale = Scale.MEDIUM,
        context: Optional[ExperimentContext] = None) -> Dict[str, Sec7Result]:
    """Both variants: paper MIPS, and MIPS measured on this machine."""
    context = context or ExperimentContext(scale)
    paper = run_paper_numbers()
    table3 = run_table3(scale, context, core_counts=(1, 4),
                        workloads_per_point=2)
    measured_model = OverheadModel(
        instructions_per_thread=context.parameters.trace_length,
        cores=4,
        benchmarks=len(context.benchmarks),
        detailed_mips=table3.rows_by_cores[4].detailed_mips,
        detailed_single_mips=table3.rows_by_cores[1].detailed_mips,
        approx_mips=table3.rows_by_cores[4].badco_mips,
    )
    measured = Sec7Result(
        scenarios=[
            OverheadScenario("balanced random (75 %)", 30, 0.75,
                             measured_model.detailed_hours(30), 0.0),
            OverheadScenario("balanced random (90 %)", 120, 0.90,
                             measured_model.detailed_hours(120), 0.0),
            OverheadScenario("workload strata (99 %)", 30, 0.99,
                             measured_model.detailed_hours(30),
                             measured_model.model_building_hours()
                             + measured_model.approx_hours(800)),
        ],
        stratification_extra_fraction=measured_model.stratification_overhead(30, 800))
    return {"paper-mips": paper, "measured-mips": measured}


def main() -> None:
    results = run()
    for label, result in results.items():
        print(f"Section VII-A overhead example ({label})")
        for row in result.rows():
            print(row)
        print(f"stratification extra fraction: "
              f"{result.stratification_extra_fraction:.2f}")


if __name__ == "__main__":
    main()
