"""Figure 3: validating the analytical confidence model.

The paper compares eq. (5) against the *measured* degree of confidence
(fraction of 1000 random samples on which DRRIP's sample throughput
beats DIP's, WSU metric) for 2, 4 and 8 cores, finding close agreement
even at small sample sizes.  We reproduce the comparison on the BADCO
populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.columnar import WorkloadIndex
from repro.core.confidence import confidence_from_cv
from repro.core.delta import DeltaVariable, delta_statistics
from repro.core.estimator import ConfidenceEstimator
from repro.core.metrics import ThroughputMetric, WSU
from repro.core.sampling import SimpleRandomSampling
from repro.experiments.common import ExperimentContext, Scale

DEFAULT_SIZES = (10, 20, 40, 80, 160, 320, 640)


@dataclass
class Fig3Series:
    cores: int
    sample_sizes: Sequence[int]
    model: List[float]
    experimental: List[float]

    def max_gap(self) -> float:
        return max(abs(m - e) for m, e in zip(self.model, self.experimental))


@dataclass
class Fig3Result:
    pair: Tuple[str, str]
    metric: str
    series: Dict[int, Fig3Series]

    def rows(self) -> List[str]:
        lines = []
        for cores, s in sorted(self.series.items()):
            lines.append(f"--- {cores} cores ---")
            lines.append(f"{'W':>5}  {'model':>8}  {'measured':>8}")
            for w, m, e in zip(s.sample_sizes, s.model, s.experimental):
                lines.append(f"{w:5d}  {m:8.3f}  {e:8.3f}")
        return lines


def run(scale: Scale = Scale.MEDIUM,
        context: Optional[ExperimentContext] = None,
        pair: Tuple[str, str] = ("DIP", "DRRIP"),
        metric: ThroughputMetric = WSU,
        core_counts: Sequence[int] = (2, 4, 8),
        sample_sizes: Sequence[int] = DEFAULT_SIZES,
        backend: str = "badco") -> Fig3Result:
    context = context or ExperimentContext(scale)
    x, y = pair
    series: Dict[int, Fig3Series] = {}
    for cores in core_counts:
        results = context.population_results(cores, backend)
        population = context.population(cores)
        variable = DeltaVariable(metric, results.reference)
        index = WorkloadIndex.from_population(population)
        delta = variable.column(index, results.ipc_table(x),
                                results.ipc_table(y))
        stats = delta_statistics(delta.values)
        estimator = ConfidenceEstimator(population, delta,
                                        draws=context.parameters.draws)
        method = SimpleRandomSampling()
        # One vectorized call evaluates the whole model series (eq. 5).
        model = np.asarray(
            confidence_from_cv(stats.cv, np.asarray(sample_sizes))).tolist()
        measured = estimator.curve(method, sample_sizes,
                                   seed=context.seed).confidence
        series[cores] = Fig3Series(cores, tuple(sample_sizes), model,
                                   list(measured))
    return Fig3Result(pair=pair, metric=metric.name, series=series)


def main() -> None:
    result = run()
    print(f"Figure 3: model vs measured confidence "
          f"({result.pair[1]} > {result.pair[0]}, {result.metric})")
    for row in result.rows():
        print(row)


if __name__ == "__main__":
    main()
