"""Shared experiment infrastructure: scales, contexts, campaign reuse.

The paper's populations (253 / 12650 / 10000 workloads at 100 M
instructions each) are out of reach for a pure-Python reproduction run
under CI, so every experiment accepts a :class:`Scale`:

- ``SMALL``: seconds; unit-test sized, statistically noisy.
- ``MEDIUM``: minutes; the default for the benchmark harness --
  population shapes and orderings are stable at this size.
- ``FULL``: the paper's population sizes (hours of CPU).

An :class:`ExperimentContext` owns the simulation campaigns so that the
many figures sharing the same population (Figs. 3-7 all consume the
4-core BADCO population) pay for it once per process, and once per
machine when a cache directory is configured (environment variable
``REPRO_CACHE_DIR``, default ``~/.cache/repro-ispass2013``).
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.spec import benchmark_names
from repro.core.population import WorkloadPopulation
from repro.core.workload import Workload
from repro.mem.replacement import POLICY_NAMES
from repro.sim.badco.model import BadcoModelBuilder
from repro.sim.results import PopulationResults
from repro.sim.runner import SimulationCampaign


class Scale(enum.Enum):
    """Experiment size knob (see module docstring)."""

    SMALL = "small"
    MEDIUM = "medium"
    FULL = "full"


@dataclass(frozen=True)
class ScaleParameters:
    """Concrete sizes for one scale.

    Attributes:
        trace_length: uops per thread.
        population_cap: max workloads in the approximate-simulation
            population per core count (None = the paper's exact sizes).
        detailed_sample: workloads simulated with the detailed
            simulator (the paper uses 250).
        draws: Monte-Carlo resamples per confidence estimate.
    """

    trace_length: int
    population_cap: Dict[int, int]
    detailed_sample: int
    draws: int


_PARAMETERS: Dict[Scale, ScaleParameters] = {
    Scale.SMALL: ScaleParameters(
        trace_length=6000,
        population_cap={2: 60, 4: 80, 8: 60},
        detailed_sample=8,
        draws=200,
    ),
    Scale.MEDIUM: ScaleParameters(
        trace_length=16000,
        population_cap={2: 253, 4: 700, 8: 400},
        detailed_sample=40,
        draws=1000,
    ),
    Scale.FULL: ScaleParameters(
        trace_length=20000,
        population_cap={2: 253, 4: 12650, 8: 10000},
        detailed_sample=250,
        draws=10000,
    ),
}

#: The ten ordered policy pairs of the paper's Figs. 4-5 ("X>Y" bars).
POLICY_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("LRU", "RND"), ("LRU", "FIFO"), ("LRU", "DIP"), ("LRU", "DRRIP"),
    ("RND", "FIFO"), ("RND", "DIP"), ("RND", "DRRIP"),
    ("FIFO", "DIP"), ("FIFO", "DRRIP"),
    ("DIP", "DRRIP"),
)


def default_cache_dir() -> Optional[Path]:
    """Campaign cache directory (``REPRO_CACHE_DIR``; empty disables)."""
    value = os.environ.get("REPRO_CACHE_DIR")
    if value == "":
        return None
    if value:
        return Path(value)
    return Path.home() / ".cache" / "repro-ispass2013"


class ExperimentContext:
    """Owns populations and simulation campaigns for one scale.

    Args:
        scale: experiment size.
        seed: global seed (traces, populations, resampling).
        cache_dir: on-disk campaign cache; defaults per
            :func:`default_cache_dir`.
        benchmarks: benchmark suite (default: the 22 SPEC stand-ins).
    """

    def __init__(self, scale: Scale = Scale.MEDIUM, seed: int = 0,
                 cache_dir: Optional[Path] = None,
                 benchmarks: Optional[Sequence[str]] = None) -> None:
        self.scale = scale
        self.parameters = _PARAMETERS[scale]
        self.seed = seed
        self.cache_dir = cache_dir if cache_dir is not None else default_cache_dir()
        self.benchmarks = list(benchmarks or benchmark_names())
        self._populations: Dict[int, WorkloadPopulation] = {}
        self._campaigns: Dict[Tuple[str, int], SimulationCampaign] = {}
        self._builders: Dict[int, BadcoModelBuilder] = {}
        self.policies = list(POLICY_NAMES)

    # ------------------------------------------------------------------

    def population(self, cores: int) -> WorkloadPopulation:
        """The (possibly capped) workload population for a core count."""
        pop = self._populations.get(cores)
        if pop is None:
            cap = self.parameters.population_cap[cores]
            pop = WorkloadPopulation(self.benchmarks, cores,
                                     max_size=cap, seed=self.seed)
            self._populations[cores] = pop
        return pop

    def detailed_sample(self, cores: int) -> List[Workload]:
        """The paper's "250 randomly selected workloads" (scaled).

        Drawn uniformly from the population without replacement, with a
        seed independent of the population's own.
        """
        import random

        population = self.population(cores)
        count = min(self.parameters.detailed_sample, len(population))
        rng = random.Random((self.seed << 8) ^ cores)
        return sorted(rng.sample(list(population), count))

    # ------------------------------------------------------------------

    def builder(self) -> BadcoModelBuilder:
        """The shared BADCO model builder (one per trace length)."""
        key = self.parameters.trace_length
        builder = self._builders.get(key)
        if builder is None:
            builder = BadcoModelBuilder(key, self.seed)
            self._builders[key] = builder
        return builder

    def campaign(self, simulator: str, cores: int) -> SimulationCampaign:
        """The memoised campaign for (simulator, cores)."""
        key = (simulator, cores)
        campaign = self._campaigns.get(key)
        if campaign is None:
            campaign = SimulationCampaign(
                simulator, cores,
                trace_length=self.parameters.trace_length,
                seed=self.seed, cache_dir=self.cache_dir,
                builder=self.builder() if simulator == "badco" else None)
            self._campaigns[key] = campaign
        return campaign

    # ------------------------------------------------------------------
    # Bulk products used by several figures

    def badco_population_results(self, cores: int) -> PopulationResults:
        """BADCO IPCs for the whole population under all five policies."""
        campaign = self.campaign("badco", cores)
        campaign.run_grid(self.population(cores), self.policies)
        campaign.reference_ipcs(self.benchmarks)
        campaign.save()
        return campaign.results

    def detailed_sample_results(self, cores: int) -> PopulationResults:
        """Detailed IPCs for the detailed sample under all policies."""
        campaign = self.campaign("detailed", cores)
        campaign.run_grid(self.detailed_sample(cores), self.policies)
        campaign.reference_ipcs(self.benchmarks)
        campaign.save()
        return campaign.results

    def badco_results_for(self, cores: int,
                          workloads: Sequence[Workload]) -> PopulationResults:
        """BADCO IPCs for an explicit workload list (all policies)."""
        campaign = self.campaign("badco", cores)
        campaign.run_grid(workloads, self.policies)
        campaign.reference_ipcs(self.benchmarks)
        campaign.save()
        return campaign.results
