"""Shared experiment infrastructure: scales, contexts, campaign reuse.

The size knobs (:class:`Scale`, :class:`ScaleParameters`,
:func:`default_cache_dir`) now live in :mod:`repro.api.scales` and are
re-exported here for compatibility; the heavy lifting -- populations,
shared model builders, memoised campaigns, the on-disk cache
(environment variable ``REPRO_CACHE_DIR``, default
``~/.cache/repro-ispass2013``) -- lives in
:class:`repro.api.session.Session`.

:class:`ExperimentContext` remains the experiment drivers' handle on
all of that: it wraps one :class:`Session` so that the many figures
sharing the same population (Figs. 3-7 all consume the 4-core
approximate-simulation population) pay for it once per process, and
once per machine when a cache directory is configured.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.api.scales import (
    _PARAMETERS as _PARAMETERS,
    Scale,
    ScaleLike,
    ScaleParameters,
    default_cache_dir,
    scale_parameters,
)
from repro.api.engine import Campaign
from repro.api.session import Session
from repro.core.population import WorkloadPopulation
from repro.core.workload import Workload
from repro.sim.results import PopulationResults

__all__ = [
    "ExperimentContext", "POLICY_PAIRS", "Scale", "ScaleParameters",
    "default_cache_dir", "scale_parameters",
]

#: The ten ordered policy pairs of the paper's Figs. 4-5 ("X>Y" bars).
POLICY_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("LRU", "RND"), ("LRU", "FIFO"), ("LRU", "DIP"), ("LRU", "DRRIP"),
    ("RND", "FIFO"), ("RND", "DIP"), ("RND", "DRRIP"),
    ("FIFO", "DIP"), ("FIFO", "DRRIP"),
    ("DIP", "DRRIP"),
)


class ExperimentContext:
    """Owns populations and simulation campaigns for one scale.

    A thin wrapper over :class:`repro.api.session.Session` keeping the
    interface the experiment drivers grew up with.

    Args:
        scale: experiment size.
        seed: global seed (traces, populations, resampling).
        cache_dir: on-disk campaign cache; defaults per
            :func:`repro.api.scales.default_cache_dir`.
        model_store_dir: persistent trained-model store; defaults per
            :func:`repro.api.scales.default_model_store_dir`.
        benchmarks: benchmark suite (default: the 22 SPEC stand-ins).
        jobs: worker processes for campaign grids (1 = serial).
    """

    def __init__(self, scale: ScaleLike = Scale.MEDIUM, seed: int = 0,
                 cache_dir: Optional[Path] = None,
                 benchmarks: Optional[Sequence[str]] = None,
                 jobs: int = 1,
                 model_store_dir: Optional[Path] = None) -> None:
        self.session = Session(scale, seed=seed, jobs=jobs,
                               cache_dir=cache_dir,
                               model_store_dir=model_store_dir,
                               benchmarks=benchmarks)

    # -- session views -------------------------------------------------

    @property
    def scale(self) -> Scale:
        return self.session.scale

    @property
    def parameters(self) -> ScaleParameters:
        return self.session.parameters

    @property
    def seed(self) -> int:
        return self.session.seed

    @property
    def jobs(self) -> int:
        return self.session.jobs

    @property
    def cache_dir(self) -> Optional[Path]:
        return self.session.cache_dir

    @property
    def benchmarks(self) -> List[str]:
        return self.session.benchmarks

    @property
    def policies(self) -> List[str]:
        return self.session.policies

    # ------------------------------------------------------------------

    def population(self, cores: int) -> WorkloadPopulation:
        """The (possibly capped) workload population for a core count."""
        return self.session.population(cores)

    def detailed_sample(self, cores: int) -> List[Workload]:
        """The paper's "250 randomly selected workloads" (scaled)."""
        return self.session.detailed_sample(cores)

    # ------------------------------------------------------------------

    def builder(self, backend: str = "badco"):
        """The shared model builder (one per backend and trace length)."""
        return self.session.builder(backend)

    def campaign(self, simulator: str, cores: int) -> Campaign:
        """The memoised campaign for (simulator backend, cores)."""
        return self.session.campaign(simulator, cores)

    # ------------------------------------------------------------------
    # Bulk products used by several figures

    def population_results(self, cores: int,
                           backend: str = "badco") -> PopulationResults:
        """Approximate-simulation IPCs for the whole population.

        Covers all five paper policies plus the single-thread reference
        IPCs, persisting to the cache directory.
        """
        return self.session.results(backend, cores)

    def sample_results(self, cores: int,
                       backend: str = "detailed") -> PopulationResults:
        """IPCs for the detailed sample under all policies."""
        return self.session.results(backend, cores,
                                    workloads=self.detailed_sample(cores))

    def results_for(self, cores: int, workloads: Sequence[Workload],
                    backend: str = "badco") -> PopulationResults:
        """IPCs for an explicit workload list (all policies)."""
        return self.session.results(backend, cores, workloads=workloads)

    # -- pre-registry spellings, kept for compatibility ----------------

    def badco_population_results(self, cores: int) -> PopulationResults:
        """BADCO IPCs for the whole population under all five policies."""
        return self.population_results(cores, "badco")

    def detailed_sample_results(self, cores: int) -> PopulationResults:
        """Detailed IPCs for the detailed sample under all policies."""
        return self.sample_results(cores, "detailed")

    def badco_results_for(self, cores: int,
                          workloads: Sequence[Workload]) -> PopulationResults:
        """BADCO IPCs for an explicit workload list (all policies)."""
        return self.results_for(cores, workloads, "badco")

    def __repr__(self) -> str:
        return (f"ExperimentContext(scale={self.scale.value!r}, "
                f"seed={self.seed}, jobs={self.jobs})")
