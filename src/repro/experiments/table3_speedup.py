"""Table III: BADCO average simulation speedup over the detailed core.

The paper reports MIPS (million simulated instructions per second of
host time) for Zesto and BADCO at 1/2/4/8 cores; BADCO's speedup is
14.8x / 25.2x / 38.9x / 68.1x, growing with core count.  We time both
simulators on the same workloads.  Absolute MIPS differ wildly from the
paper's (different host, different language); the shape to check is
BADCO >> detailed with the ratio growing with the problem size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api.backends import get_backend
from repro.core.population import sample_workload
from repro.core.workload import Workload
from repro.experiments.common import ExperimentContext, Scale


@dataclass
class Table3Row:
    cores: int
    detailed_mips: float
    badco_mips: float

    @property
    def speedup(self) -> float:
        if self.detailed_mips == 0:
            return 0.0
        return self.badco_mips / self.detailed_mips


@dataclass
class Table3Result:
    rows_by_cores: Dict[int, Table3Row]

    def rows(self) -> List[str]:
        lines = [f"{'cores':>5}  {'detailed MIPS':>13}  {'BADCO MIPS':>10}  "
                 f"{'speedup':>8}"]
        for cores in sorted(self.rows_by_cores):
            r = self.rows_by_cores[cores]
            lines.append(f"{cores:5d}  {r.detailed_mips:13.4f}  "
                         f"{r.badco_mips:10.4f}  {r.speedup:8.1f}")
        return lines


def run(scale: Scale = Scale.MEDIUM,
        context: Optional[ExperimentContext] = None,
        core_counts: Tuple[int, ...] = (1, 2, 4, 8),
        workloads_per_point: int = 3,
        approx_backend: str = "badco") -> Table3Result:
    context = context or ExperimentContext(scale)
    length = context.parameters.trace_length
    detailed_backend = get_backend("detailed")
    approx = get_backend(approx_backend)
    builder = context.builder(approx_backend)
    # Train all models up front so building is not charged to sim speed
    # (the paper charges it separately, in Section VII-A).
    if builder is not None:
        for benchmark in context.benchmarks:
            builder.build(benchmark)
    rng = random.Random(context.seed + 3)
    rows: Dict[int, Table3Row] = {}
    for cores in core_counts:
        picks: List[Workload] = [
            sample_workload(context.benchmarks, max(cores, 1), rng)
            for _ in range(workloads_per_point)]
        det_instr = det_wall = 0.0
        bad_instr = bad_wall = 0.0
        for workload in picks:
            det = detailed_backend.make_simulator(
                cores, "LRU", length, seed=context.seed)
            run_d = det.run(workload)
            det_instr += run_d.instructions
            det_wall += run_d.wall_seconds
            bad = approx.make_simulator(
                cores, "LRU", length, seed=context.seed, builder=builder)
            run_b = bad.run(workload)
            bad_instr += run_b.instructions
            bad_wall += run_b.wall_seconds
        rows[cores] = Table3Row(
            cores=cores,
            detailed_mips=det_instr / 1e6 / det_wall,
            badco_mips=bad_instr / 1e6 / bad_wall)
    return Table3Result(rows)


def main() -> None:
    result = run()
    print("Table III: simulation speed (MIPS) and BADCO speedup")
    for row in result.rows():
        print(row)


if __name__ == "__main__":
    main()
