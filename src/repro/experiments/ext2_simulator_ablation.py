"""Extension 2: does the methodology survive a cruder fast simulator?

The paper's workflow needs a fast simulator that is *qualitatively*
accurate.  This ablation swaps BADCO for the interval-model simulator
(one training run, idealised MLP; see ``repro.sim.interval``) and asks:

1. accuracy: per-benchmark CPI error of each approximate simulator
   against the detailed one, and model-building + simulation speed;
2. robustness: does workload stratification built from the *interval*
   simulator's d(w) still beat random sampling when the verdict is
   judged by BADCO-quality data?

Shape expected: the interval model is cheaper and noticeably less
accurate; stratification built from it loses some but not all of its
advantage -- the methodology degrades gracefully with simulator
quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.columnar import DeltaColumn, WorkloadIndex
from repro.core.delta import DeltaVariable
from repro.core.estimator import ConfidenceEstimator
from repro.core.metrics import IPCT
from repro.core.sampling import SimpleRandomSampling, WorkloadStratification
from repro.core.workload import Workload
from repro.experiments.common import ExperimentContext, Scale
from repro.sim.detailed import DetailedSimulator
from repro.sim.interval import IntervalProfileBuilder, IntervalSimulator


@dataclass
class AccuracyRow:
    benchmark: str
    detailed_ipc: float
    badco_ipc: float
    interval_ipc: float

    def errors(self) -> Tuple[float, float]:
        badco = abs(self.badco_ipc - self.detailed_ipc) / self.detailed_ipc
        interval = abs(self.interval_ipc - self.detailed_ipc) / self.detailed_ipc
        return badco * 100, interval * 100


@dataclass
class Ext2Result:
    accuracy: List[AccuracyRow]
    badco_mean_error: float
    interval_mean_error: float
    badco_training_uops: int
    interval_training_uops: int
    badco_uops_per_benchmark: float
    interval_uops_per_benchmark: float
    confidence: Dict[str, List[float]]     # method -> per-size confidence
    sample_sizes: Sequence[int]

    def rows(self) -> List[str]:
        lines = [f"{'benchmark':>12}  {'detailed':>8}  {'badco':>8}  "
                 f"{'interval':>8}"]
        for row in self.accuracy:
            lines.append(f"{row.benchmark:>12}  {row.detailed_ipc:8.3f}  "
                         f"{row.badco_ipc:8.3f}  {row.interval_ipc:8.3f}")
        lines.append(f"mean CPI-ish error: badco {self.badco_mean_error:.1f} %"
                     f", interval {self.interval_mean_error:.1f} %")
        lines.append(f"training uops per benchmark: "
                     f"badco {self.badco_uops_per_benchmark:.0f} (2 runs), "
                     f"interval {self.interval_uops_per_benchmark:.0f} (1 run)")
        lines.append(f"{'W':>5}  " + "  ".join(
            f"{m:>22}" for m in self.confidence))
        for i, w in enumerate(self.sample_sizes):
            lines.append(f"{w:5d}  " + "  ".join(
                f"{series[i]:22.3f}" for series in self.confidence.values()))
        return lines


def run(scale: Scale = Scale.MEDIUM,
        context: Optional[ExperimentContext] = None,
        cores: int = 2,
        pair: Tuple[str, str] = ("LRU", "DIP"),
        benchmarks: Sequence[str] = ("povray", "gcc", "mcf", "libquantum"),
        sample_sizes: Sequence[int] = (10, 20, 40)) -> Ext2Result:
    context = context or ExperimentContext(scale)
    length = context.parameters.trace_length
    x, y = pair

    # --- 1. single-thread accuracy of the two approximate simulators.
    # A private, store-less builder: this ablation *measures* training
    # cost, so a warm session model store must not satisfy the builds.
    from repro.sim.badco.model import BadcoModelBuilder

    badco_builder = BadcoModelBuilder(length, context.seed)
    interval_builder = IntervalProfileBuilder(length, context.seed)
    interval_builder.training_uops = 0
    accuracy: List[AccuracyRow] = []
    from repro.sim.badco.multicore import BadcoSimulator
    for benchmark in benchmarks:
        workload = Workload([benchmark])
        detailed = DetailedSimulator(cores=1, trace_length=length,
                                     seed=context.seed).run(workload).ipcs[0]
        badco = BadcoSimulator(cores=1, builder=badco_builder,
                               trace_length=length,
                               seed=context.seed).run(workload).ipcs[0]
        interval = IntervalSimulator(cores=1, builder=interval_builder,
                                     trace_length=length,
                                     seed=context.seed).run(workload).ipcs[0]
        accuracy.append(AccuracyRow(benchmark, detailed, badco, interval))
    badco_errors = [row.errors()[0] for row in accuracy]
    interval_errors = [row.errors()[1] for row in accuracy]

    # --- 2. robustness: strata from the interval simulator's d(w),
    #        judged against the BADCO population's d(w).
    results = context.population_results(cores, "badco")
    population = context.population(cores)
    variable = DeltaVariable(IPCT, results.reference)
    index = WorkloadIndex.from_population(population)
    delta_truth = variable.column(index, results.ipc_table(x),
                                  results.ipc_table(y))
    # Interval-simulator d(w) over the same population, built straight
    # into a column aligned with the index's row order (the simulation
    # loop is inherently per-workload; the d(w) container is not).
    interval_values = np.empty(len(index.workloads), dtype=np.float64)
    for row, workload in enumerate(index.workloads):
        ipcs = {}
        for policy in (x, y):
            sim = IntervalSimulator(cores=cores, policy=policy,
                                    builder=interval_builder,
                                    trace_length=length, seed=context.seed)
            ipcs[policy] = sim.run(workload).ipcs
        interval_values[row] = variable.value(workload, ipcs[x], ipcs[y])
    interval_delta = DeltaColumn(index, interval_values)
    estimator = ConfidenceEstimator(population, delta_truth,
                                    draws=min(context.parameters.draws, 500))
    min_stratum = max(10, len(population) // 40)
    methods = {
        "random": SimpleRandomSampling(),
        "strata-from-badco": WorkloadStratification.from_column(
            delta_truth, min_stratum=min_stratum),
        "strata-from-interval": WorkloadStratification.from_column(
            interval_delta, min_stratum=min_stratum),
    }
    confidence = {
        name: [estimator.confidence(method, w, seed=context.seed)
               for w in sample_sizes]
        for name, method in methods.items()}
    badco_trained = max(len(badco_builder._cache), 1)
    interval_trained = max(len(interval_builder._cache), 1)
    return Ext2Result(
        accuracy=accuracy,
        badco_mean_error=sum(badco_errors) / len(badco_errors),
        interval_mean_error=sum(interval_errors) / len(interval_errors),
        badco_training_uops=badco_builder.training_uops,
        interval_training_uops=interval_builder.training_uops,
        badco_uops_per_benchmark=badco_builder.training_uops / badco_trained,
        interval_uops_per_benchmark=(interval_builder.training_uops
                                     / interval_trained),
        confidence=confidence,
        sample_sizes=tuple(sample_sizes))


def main() -> None:
    result = run()
    print("Extension 2: approximate-simulator ablation (BADCO vs interval)")
    for row in result.rows():
        print(row)


if __name__ == "__main__":
    main()
