"""Core configuration: the paper's Table I, capacity-scaled caches.

Pipeline widths, queue depths and latencies follow Table I exactly.
Cache and TLB *capacities* are scaled down 4x-8x (IL1/DL1 8 kB, TLBs
128/32 entries) consistently with the 16x LLC scaling in
``repro.mem.uncore``, because the synthetic traces are thousands of
uops, not 100 M instructions.  Latencies are kept at the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.cache import CacheConfig
from repro.mem.tlb import TlbConfig

KB = 1024


@dataclass(frozen=True)
class CoreConfig:
    """All parameters of one detailed core.

    Attributes mirror Table I of the paper:

    - decode/issue/commit widths 4/6/4;
    - RS/LDQ/STQ/ROB 36/36/24/128;
    - IL1 4-way / DL1 8-way, 2-cycle, 64-byte lines, next-line (IL1)
      and IP-stride + next-line (DL1) prefetchers;
    - TAGE branch predictor with BTAC and RAS.
    """

    fetch_width: int = 4
    issue_width: int = 6
    commit_width: int = 4
    decode_latency: int = 3
    rob_entries: int = 128
    rs_entries: int = 36
    ldq_entries: int = 36
    stq_entries: int = 24
    mispredict_penalty: int = 12
    il1: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="IL1", size_bytes=8 * KB, ways=4, latency=2, mshr_entries=8))
    dl1: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="DL1", size_bytes=8 * KB, ways=8, latency=2, mshr_entries=16))
    itlb: TlbConfig = field(default_factory=lambda: TlbConfig(
        name="ITLB", entries=32, ways=4, latency=2))
    dtlb: TlbConfig = field(default_factory=lambda: TlbConfig(
        name="DTLB", entries=128, ways=4, latency=2))
    clock_ghz: float = 3.0


def default_core_config() -> CoreConfig:
    """The Table I core configuration."""
    return CoreConfig()
