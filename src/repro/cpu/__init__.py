"""Detailed out-of-order core model (the repo's "Zesto").

The paper's detailed simulator is Zesto, a cycle-level x86 model.  This
package provides our equivalent ground-truth core: an out-of-order
superscalar timing model with the Table I resources (4-wide fetch,
6-wide issue, 4-wide commit, 128-entry ROB, 36-entry RS, 36/24 load/
store queues), a TAGE-style branch predictor with BTB and return-address
stack, private IL1/DL1 caches with next-line and IP-stride prefetchers,
and ITLB/DTLB -- all driving a shared uncore.

It is *detailed* relative to BADCO (``repro.sim.badco``): it models
every uop's flow through fetch, dispatch, issue, execution and commit,
where BADCO replays a behavioural node graph.
"""

from repro.cpu.branch import BranchPredictor, TageLitePredictor
from repro.cpu.resources import CoreConfig, default_core_config
from repro.cpu.core import CoreResult, DetailedCore

__all__ = [
    "BranchPredictor",
    "TageLitePredictor",
    "CoreConfig",
    "default_core_config",
    "CoreResult",
    "DetailedCore",
]
