"""The detailed out-of-order core timing model.

``DetailedCore`` replays a benchmark trace through an out-of-order
superscalar pipeline model.  Rather than simulating every structure
cycle by cycle, each uop's fetch, dispatch, issue, completion and commit
times are computed in program order from:

- *dataflow*: a uop issues no earlier than its register producers
  complete (producer positions come from the trace's dependency
  distances);
- *bandwidth*: fetch, issue and commit advance fractional slot pointers
  of 1/width per uop, modelling the per-cycle width limits;
- *occupancy*: a uop cannot dispatch until the uop ``ROB`` entries ahead
  of it has committed (likewise RS vs issue, LDQ/STQ vs load/store
  completion);
- *memory*: loads access DTLB and DL1 at issue; DL1 misses go to the
  shared uncore, so multicore contention feeds back into timing;
- *control*: mispredicted branches (TAGE-lite + BTB) stall fetch until
  resolution plus a redirect penalty.

This event-ordered formulation is what makes a pure-Python "detailed"
simulator feasible; it remains far slower and far more detailed than
the BADCO behavioural model, which is the relationship the paper's
methodology needs.

Cores expose a *stepper* interface (:meth:`advance`): the multicore
simulator interleaves cores in global time order so that shared-LLC and
bus contention are resolved consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.bench.trace import Trace, Uop, UopKind
from repro.cpu.branch import BranchTargetBuffer, TageLitePredictor
from repro.cpu.resources import CoreConfig
from repro.mem.cache import Cache
from repro.mem.prefetch import NextLinePrefetcher, StridePrefetcher
from repro.mem.replacement import make_policy
from repro.mem.tlb import Tlb

#: Uncore access callback:
#: (address, now, is_write, pc, is_prefetch) -> completion time.
UncoreAccess = Callable[[int, int, bool, int, bool], int]


@dataclass
class CoreResult:
    """Summary of one core's execution of (part of) a trace."""

    instructions: int
    cycles: int
    dl1_misses: int
    il1_misses: int
    branch_mispredicts: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


class DetailedCore:
    """Out-of-order core executing one trace against an uncore.

    Args:
        core_id: index of this core (passed through to the uncore).
        config: Table I resources.
        trace: the benchmark trace to execute.
        uncore_access: callback serving L1 misses.
        start_time: global cycle at which this core begins.
    """

    def __init__(self, core_id: int, config: CoreConfig, trace: Trace,
                 uncore_access: UncoreAccess, start_time: int = 0) -> None:
        self.core_id = core_id
        self.config = config
        self.trace = trace
        self._uncore_access = uncore_access

        self.predictor = TageLitePredictor()
        self.btb = BranchTargetBuffer()
        self.il1 = Cache(config.il1,
                         make_policy("LRU", config.il1.num_sets, config.il1.ways),
                         next_level=self._il1_next_level)
        self.dl1 = Cache(config.dl1,
                         make_policy("LRU", config.dl1.num_sets, config.dl1.ways),
                         next_level=self._dl1_next_level)
        self.il1_prefetcher = NextLinePrefetcher(self.il1)
        self.dl1_stride_prefetcher = StridePrefetcher(self.dl1)
        self.dl1_nextline_prefetcher = NextLinePrefetcher(self.dl1)
        self.itlb = Tlb(config.itlb)
        self.dtlb = Tlb(config.dtlb)

        # Pipeline pointers (absolute cycles; fractional for bandwidth).
        self._fetch_slot = float(start_time)
        self._issue_slot = float(start_time)
        self._commit_slot = float(start_time)
        self._redirect_floor = float(start_time)
        self._last_commit = float(start_time)
        self._last_fetch_line = -1
        self._il1_ready = float(start_time)

        # Ring buffers of per-uop times for dependency/occupancy lookups.
        window = max(config.rob_entries, 64) + 1
        self._complete_ring: List[float] = [start_time] * window
        self._commit_ring: List[float] = [start_time] * window
        self._window = window
        rs_window = config.rs_entries
        self._issue_ring: List[float] = [start_time] * rs_window
        self._load_ring: List[float] = [start_time] * config.ldq_entries
        self._store_ring: List[float] = [start_time] * config.stq_entries

        self.position = 0           # next uop index in the trace
        self.executed = 0           # dynamic uops executed (incl. restarts)
        self.branch_mispredicts = 0
        self.start_time = start_time
        self._loads_seen = 0
        self._stores_seen = 0
        # The pc observed during fetch, for prefetcher training context.
        self._current_pc = 0

    # ------------------------------------------------------------------
    # L1 next-level hooks: route to the shared uncore.

    def _il1_next_level(self, address: int, now: int, is_write: bool,
                        is_prefetch: bool = False) -> int:
        return self._uncore_access(address, int(now), is_write,
                                   self._current_pc, is_prefetch)

    def _dl1_next_level(self, address: int, now: int, is_write: bool,
                        is_prefetch: bool = False) -> int:
        return self._uncore_access(address, int(now), is_write,
                                   self._current_pc, is_prefetch)

    # ------------------------------------------------------------------

    @property
    def local_time(self) -> float:
        """Current frontier of this core (last commit time)."""
        return self._last_commit

    @property
    def done(self) -> bool:
        """True when the whole trace has been executed once."""
        return self.position >= len(self.trace)

    def restart(self) -> None:
        """Rewind the trace (multiprogram restart semantics).

        Microarchitectural state (caches, predictor) is deliberately
        kept: the paper restarts a finished thread "as many times as
        necessary" on a warm machine.
        """
        self.position = 0

    def advance(self) -> float:
        """Execute the next uop; returns the core's new local time."""
        uop = self.trace[self.position]
        self.position += 1
        index = self.executed
        self.executed += 1
        self._execute_uop(uop, index)
        return self._last_commit

    # ------------------------------------------------------------------

    def _execute_uop(self, uop: Uop, index: int) -> None:
        config = self.config
        self._current_pc = uop.pc

        # ---- Fetch: width limit, redirects, IL1/ITLB.
        fetch = self._fetch_slot + 1.0 / config.fetch_width
        if fetch < self._redirect_floor:
            fetch = self._redirect_floor
        line = uop.pc >> 6
        if line != self._last_fetch_line:
            self._last_fetch_line = line
            now = int(fetch)
            itlb_penalty = self.itlb.lookup(uop.pc)
            before = self.il1.stats.demand_misses
            il1_done = self.il1.access(uop.pc, now + itlb_penalty)
            self.il1_prefetcher.observe(uop.pc, uop.pc, now,
                                        self.il1.stats.demand_misses > before)
            # Hit latency is pipelined away; only the cycles beyond a
            # hit (misses, in-flight fills, TLB walks) stall fetch.
            stall = (il1_done - now) - self.config.il1.latency + itlb_penalty
            self._il1_ready = fetch + stall if stall > 0 else 0.0
        if fetch < self._il1_ready:
            fetch = self._il1_ready
        self._fetch_slot = fetch

        # ---- Dispatch: decode latency + ROB/RS/LDQ/STQ occupancy.
        dispatch = fetch + config.decode_latency
        rob_free = self._commit_ring[(index - config.rob_entries) % self._window] \
            if index >= config.rob_entries else None
        if rob_free is not None and dispatch < rob_free:
            dispatch = rob_free
        rs_free = self._issue_ring[index % config.rs_entries] \
            if index >= config.rs_entries else None
        if rs_free is not None and dispatch < rs_free:
            dispatch = rs_free
        if uop.kind == UopKind.LOAD:
            if self._loads_seen >= config.ldq_entries:
                ldq_free = self._load_ring[self._loads_seen % config.ldq_entries]
                if dispatch < ldq_free:
                    dispatch = ldq_free
        elif uop.kind == UopKind.STORE:
            if self._stores_seen >= config.stq_entries:
                stq_free = self._store_ring[self._stores_seen % config.stq_entries]
                if dispatch < stq_free:
                    dispatch = stq_free

        # ---- Issue: dataflow readiness + issue bandwidth.
        ready = dispatch
        for distance in uop.src_distances:
            producer = index - distance
            if producer >= 0:
                produced = self._complete_ring[producer % self._window]
                if produced > ready:
                    ready = produced
        issue = ready
        if issue < self._issue_slot:
            issue = self._issue_slot
        self._issue_slot = issue + 1.0 / config.issue_width
        self._issue_ring[index % config.rs_entries] = issue

        # ---- Execute.
        complete = issue + uop.latency
        if uop.kind == UopKind.LOAD:
            now = int(issue) + 1
            dtlb_penalty = self.dtlb.lookup(uop.address)
            before = self.dl1.stats.demand_misses
            dl1_done = self.dl1.access(uop.address, now + dtlb_penalty)
            was_miss = self.dl1.stats.demand_misses > before
            self.dl1_stride_prefetcher.observe(uop.pc, uop.address, now, was_miss)
            if was_miss:
                self.dl1_nextline_prefetcher.observe(uop.pc, uop.address, now, True)
            complete = float(dl1_done) + dtlb_penalty
            self._load_ring[self._loads_seen % config.ldq_entries] = complete
            self._loads_seen += 1
        elif uop.kind == UopKind.STORE:
            # Stores complete fast (data written at commit through the
            # write buffer); the cache state update happens now.
            dtlb_penalty = self.dtlb.lookup(uop.address)
            self.dl1.access(uop.address, int(issue) + 1 + dtlb_penalty,
                            is_write=True)
            complete = issue + 1 + dtlb_penalty
            self._store_ring[self._stores_seen % config.stq_entries] = complete
            self._stores_seen += 1
        elif uop.kind == UopKind.BRANCH:
            correct_direction = self.predictor.predict_and_update(uop.pc, uop.taken)
            correct_target = True
            if uop.taken:
                correct_target = self.btb.lookup(uop.pc, uop.target or 0)
            if not correct_direction or not correct_target:
                self.branch_mispredicts += 1
                resolve = complete
                self._redirect_floor = resolve + config.mispredict_penalty
        self._complete_ring[index % self._window] = complete

        # ---- Commit: in order, width-limited.
        commit = complete
        if commit < self._last_commit:
            commit = self._last_commit
        if commit < self._commit_slot:
            commit = self._commit_slot
        self._commit_slot = commit + 1.0 / config.commit_width
        self._commit_ring[index % self._window] = commit
        self._last_commit = commit

    # ------------------------------------------------------------------

    def result(self) -> CoreResult:
        """Counters for everything executed so far."""
        cycles = int(self._last_commit - self.start_time)
        return CoreResult(
            instructions=self.executed,
            cycles=max(cycles, 1),
            dl1_misses=self.dl1.stats.demand_misses,
            il1_misses=self.il1.stats.demand_misses,
            branch_mispredicts=self.branch_mispredicts,
        )
