"""Branch prediction: a TAGE-lite conditional predictor plus BTB/RAS.

Table I of the paper specifies a 4 kB TAGE predictor, a BTAC and a
return-address stack.  We implement a scaled TAGE [Seznec & Michaud,
JILP 2006] with a bimodal base table and tagged tables indexed by
geometrically increasing global-history lengths; prediction comes from
the longest-history tagged table that matches, with the usual
allocate-on-mispredict update rule.
"""

from __future__ import annotations

from typing import List, Optional


class BranchPredictor:
    """Interface: predict a conditional branch's direction, then train."""

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Convenience: one call per dynamic branch; True if correct."""
        prediction = self.predict(pc)
        self.update(pc, taken)
        return prediction == taken


class _TaggedTable:
    """One tagged TAGE component."""

    __slots__ = ("entries", "history_bits", "tag_bits", "tags", "counters",
                 "useful")

    def __init__(self, entries: int, history_bits: int, tag_bits: int = 8) -> None:
        self.entries = entries
        self.history_bits = history_bits
        self.tag_bits = tag_bits
        self.tags: List[int] = [-1] * entries
        self.counters: List[int] = [0] * entries   # signed 3-bit [-4, 3]
        self.useful: List[int] = [0] * entries

    def index_and_tag(self, pc: int, history: int) -> tuple:
        folded = 0
        h = history & ((1 << self.history_bits) - 1)
        while h:
            folded ^= h & 0xFFFF
            h >>= 16
        index = (pc ^ folded ^ (folded >> 4)) % self.entries
        tag = ((pc >> 2) ^ folded) & ((1 << self.tag_bits) - 1)
        return index, tag


class TageLitePredictor(BranchPredictor):
    """Scaled-down TAGE: bimodal base + tagged geometric-history tables.

    Defaults (3 tagged tables of 512 entries, histories 4/16/64) give
    accuracy in the 90-99% range depending on the branch behaviour of
    the synthetic benchmarks, which is the dynamic the study needs --
    branchy low-ILP codes pay a real mispredict tax.
    """

    def __init__(self, bimodal_entries: int = 2048,
                 tagged_entries: int = 512,
                 history_lengths: tuple = (4, 16, 64)) -> None:
        self._bimodal = [0] * bimodal_entries     # signed 2-bit [-2, 1]
        self._tables = [_TaggedTable(tagged_entries, bits)
                        for bits in history_lengths]
        self._history = 0
        self._last_provider: Optional[int] = None
        self._last_index = 0
        self.predictions = 0
        self.mispredictions = 0

    # -- prediction ----------------------------------------------------

    def predict(self, pc: int) -> bool:
        self._last_provider = None
        prediction = self._bimodal[pc % len(self._bimodal)] >= 0
        for table_number, table in enumerate(self._tables):
            index, tag = table.index_and_tag(pc, self._history)
            if table.tags[index] == tag:
                prediction = table.counters[index] >= 0
                self._last_provider = table_number
                self._last_index = index
        return prediction

    # -- update --------------------------------------------------------

    def update(self, pc: int, taken: bool) -> None:
        prediction = None
        if self._last_provider is not None:
            table = self._tables[self._last_provider]
            counter = table.counters[self._last_index]
            prediction = counter >= 0
            table.counters[self._last_index] = _saturate(counter, taken, -4, 3)
            if prediction == taken:
                table.useful[self._last_index] = min(
                    table.useful[self._last_index] + 1, 3)
        else:
            index = pc % len(self._bimodal)
            prediction = self._bimodal[index] >= 0
            self._bimodal[index] = _saturate(self._bimodal[index], taken, -2, 1)
        mispredicted = prediction != taken
        self.predictions += 1
        if mispredicted:
            self.mispredictions += 1
            self._allocate(pc, taken)
        self._history = ((self._history << 1) | int(taken)) & ((1 << 64) - 1)

    def _allocate(self, pc: int, taken: bool) -> None:
        """Allocate in a longer-history table after a misprediction."""
        start = 0 if self._last_provider is None else self._last_provider + 1
        for table in self._tables[start:]:
            index, tag = table.index_and_tag(pc, self._history)
            if table.useful[index] == 0:
                table.tags[index] = tag
                table.counters[index] = 0 if taken else -1
                return
            table.useful[index] -= 1

    # -- statistics ----------------------------------------------------

    @property
    def mispredict_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions


def _saturate(counter: int, taken: bool, low: int, high: int) -> int:
    if taken:
        return min(counter + 1, high)
    return max(counter - 1, low)


class BranchTargetBuffer:
    """Direct-mapped BTB; a miss on a taken branch costs a redirect."""

    def __init__(self, entries: int = 1024) -> None:
        self._targets: List[int] = [-1] * entries
        self._pcs: List[int] = [-1] * entries
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int, target: int) -> bool:
        """True if the BTB had the correct target; trains on the way."""
        index = (pc >> 2) % len(self._pcs)
        hit = self._pcs[index] == pc and self._targets[index] == target
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            self._pcs[index] = pc
            self._targets[index] = target
        return hit
