"""Aggregation and regression logic over bench trajectories.

This is the single source of truth for *what the trajectory promises*:

- :data:`THRESHOLDS` -- per-record relative wall-clock thresholds for
  the named hot paths.  ``repro report diff`` gates on these, and the
  tier-1 pin in ``tests/test_perf_bench.py`` asserts through the same
  table, so the CI gate and the test can never drift apart.
- :data:`SPEEDUP_FLOORS` -- the headline speedup ratios every
  trajectory must clear (the numbers the README quotes).
- :data:`TRAJECTORY_RECORDS` -- the record names the committed
  reference trajectory must contain.

:func:`diff_runs` compares a candidate trajectory against a baseline:
seconds are gated per-record when the two runs are comparable (same
profile on the same suite scale), hot-path *presence* and the speedup
floors are checked regardless, so a smoke-profile CI run is still a
real gate without pretending its wall-clock is the reference's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.report.records import BenchRun, RunRecord

#: Per-record relative regression thresholds for the named hot paths:
#: ``(glob pattern, allowed relative slowdown)``.  First match wins.
#: 0.50 means a candidate may be up to 50% slower than the baseline
#: before the gate trips -- wide enough for shared-runner noise, tight
#: enough that a real 2x regression can never ride in.
THRESHOLDS: Tuple[Tuple[str, float], ...] = (
    ("estimator-*", 0.50),
    ("sim-panel-analytic", 0.50),
    ("e2e-8core-warm", 0.50),
    ("serve-query-warm", 0.50),
)

#: Derived-ratio floors (inclusive: ratio >= floor passes).  These are
#: the headline claims of the trajectory; they hold at full *and*
#: smoke profile except where noted.
SPEEDUP_FLOORS: Dict[str, float] = {
    "estimator-bench-strata": 2.0,
    "sim-panel": 10.0,
    "pop-store": 2.0,
    "e2e-8core": 2.0,
    "serve-query": 1.0,
    "serve-vs-oneshot": 10.0,
}

#: At smoke scale the one-shot driver is so small that resident state
#: buys less than 10x, so the cross-suite serve-vs-oneshot headline is
#: only enforced on full-profile runs.
SMOKE_SPEEDUP_FLOORS: Dict[str, float] = {
    stem: floor for stem, floor in SPEEDUP_FLOORS.items()
    if stem != "serve-vs-oneshot"
}

#: Record names the committed reference trajectory must contain.
TRAJECTORY_RECORDS: Tuple[str, ...] = (
    "delta-wsu-scalar", "delta-wsu-columnar",
    "estimator-random-scalar", "estimator-random-columnar",
    "estimator-bench-strata-scalar", "estimator-bench-strata-columnar",
    "estimator-workload-strata-fast",
    "estimator-workload-strata-pairs",
    "sim-panel-badco", "sim-panel-analytic",
    "sim-batch-parallel-jobs1", "sim-batch-parallel-jobs2",
    "sim-batch-parallel-auto",
    "pop-store-cold", "pop-store-warm",
    "e2e-8core-cold", "e2e-8core-warm",
    "e2e-two-stage", "e2e-two-stage-refine",
    "serve-oneshot-warm", "serve-query-cold",
    "serve-query-warm", "serve-concurrent",
)


def threshold_for(name: str) -> Optional[float]:
    """The gating threshold for a record name, or None (ungated)."""
    for pattern, threshold in THRESHOLDS:
        if fnmatchcase(name, pattern):
            return threshold
    return None


def hot_path_names(names: Iterable[str]) -> List[str]:
    """The subset of ``names`` matched by the THRESHOLDS table."""
    return [name for name in names if threshold_for(name) is not None]


def floors_for(profile: Optional[str]) -> Dict[str, float]:
    """The speedup floors a run at ``profile`` must clear."""
    if profile == "smoke":
        return dict(SMOKE_SPEEDUP_FLOORS)
    return dict(SPEEDUP_FLOORS)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, exactly invariant under input order.

    The logs are sorted before summation so that permuting ``values``
    can never change the float result bit-for-bit -- the property the
    hypothesis suite pins.
    """
    if not values:
        raise ValueError("geomean of an empty sequence")
    logs = []
    for value in values:
        if not value > 0:
            raise ValueError(f"geomean requires positive values, "
                             f"got {value!r}")
        logs.append(math.log(value))
    return math.exp(math.fsum(sorted(logs)) / len(logs))


def suite_tables(run: BenchRun) -> Dict[str, List[RunRecord]]:
    """Records grouped by suite, suites in first-appearance order."""
    tables: Dict[str, List[RunRecord]] = {}
    for record in run.records:
        tables.setdefault(record.suite, []).append(record)
    return tables


def hot_path_records(run: BenchRun) -> List[RunRecord]:
    """The run's records that the THRESHOLDS table gates."""
    return [record for record in run.records
            if threshold_for(record.name) is not None]


def geomean_speedups(run: BenchRun) -> Dict[str, float]:
    """Per-suite and overall geomean of the derived speedup ratios.

    Ratios are attributed to the suite of their fast-side record stem
    (``sim-panel`` -> sim); the ``"overall"`` key spans all of them.
    """
    from repro.report.records import suite_of

    by_suite: Dict[str, List[float]] = {}
    for stem, ratio in run.speedups.items():
        if ratio > 0:
            by_suite.setdefault(suite_of(stem), []).append(ratio)
    result = {suite: geomean(ratios)
              for suite, ratios in sorted(by_suite.items())}
    all_ratios = [ratio for ratio in run.speedups.values() if ratio > 0]
    if all_ratios:
        result["overall"] = geomean(all_ratios)
    return result


# ----------------------------------------------------------------------
# Diff


@dataclass(frozen=True)
class DiffEntry:
    """One record's baseline-vs-candidate wall-clock comparison."""

    name: str
    suite: str
    baseline_seconds: float
    candidate_seconds: float
    #: (candidate - baseline) / baseline; positive is slower.
    relative: float
    #: The scaled gating threshold, or None when the record is ungated.
    threshold: Optional[float]
    #: Whether the seconds comparison counts toward the verdict.
    gated: bool

    @property
    def regressed(self) -> bool:
        return (self.gated and self.threshold is not None
                and self.relative > self.threshold)

    @property
    def improved(self) -> bool:
        return self.relative < 0


@dataclass(frozen=True)
class FloorCheck:
    """One derived-ratio floor checked against the candidate."""

    stem: str
    ratio: float
    floor: float

    @property
    def ok(self) -> bool:
        return self.ratio >= self.floor


@dataclass
class DiffResult:
    """The full verdict of a baseline-vs-candidate comparison."""

    baseline_profile: Optional[str]
    candidate_profile: Optional[str]
    #: Whether wall-clock seconds were gated (profiles comparable).
    seconds_comparable: bool
    threshold_scale: float
    #: All shared records, sorted by relative slowdown, worst first.
    entries: List[DiffEntry] = field(default_factory=list)
    #: Gated baseline records absent from the candidate although the
    #: candidate covers their suite -- a silently dropped hot path.
    missing_hot_paths: List[str] = field(default_factory=list)
    #: Candidate records the baseline has never seen.
    new_records: List[str] = field(default_factory=list)
    floor_checks: List[FloorCheck] = field(default_factory=list)
    #: Floors whose ratio the candidate could not even derive.
    missing_ratios: List[str] = field(default_factory=list)
    #: Baseline suites with no candidate record at all -- an entire
    #: suite dropped from the run (e.g. bench wrote output after a
    #: suite crashed out).  Always reported; fatal iff
    #: ``require_suites``.
    missing_suites: List[str] = field(default_factory=list)
    #: Whether missing suites fail the gate (set when diffing a run
    #: that was supposed to cover every baseline suite, e.g. CI's
    #: ``--suite all`` smoke gate).
    require_suites: bool = False

    @property
    def regressions(self) -> List[DiffEntry]:
        return [entry for entry in self.entries if entry.regressed]

    @property
    def improvements(self) -> List[DiffEntry]:
        return [entry for entry in self.entries if entry.improved]

    @property
    def ok(self) -> bool:
        return (not self.regressions and not self.missing_hot_paths
                and not self.missing_ratios
                and not (self.require_suites and self.missing_suites)
                and all(check.ok for check in self.floor_checks))


def diff_runs(baseline: BenchRun, candidate: BenchRun,
              threshold_scale: float = 1.0,
              require_suites: bool = False) -> DiffResult:
    """Compare a candidate trajectory against a baseline.

    Wall-clock seconds are gated per-record only when the two runs are
    *comparable* -- measured at the same profile (both ``None`` counts
    as comparable: two schema-1 files, or the committed trajectory
    against itself).  Hot-path presence and the candidate's speedup
    floors are enforced either way.  Baseline suites the candidate
    dropped entirely are always reported in ``missing_suites``; a
    suite-subset candidate is otherwise legitimate, so they only fail
    the gate under ``require_suites``.

    Args:
        threshold_scale: multiplies every THRESHOLDS entry -- CI uses
            a larger scale on shared runners where timer noise is
            wider than on the reference machine.
        require_suites: fail the gate when the candidate is missing an
            entire baseline suite -- set this when gating a run that
            claims full coverage (``repro bench --suite all``).
    """
    if not threshold_scale > 0:
        raise ValueError(f"threshold_scale must be positive, "
                         f"got {threshold_scale!r}")
    comparable = baseline.profile == candidate.profile
    base_by_name = baseline.by_name
    cand_by_name = candidate.by_name

    entries: List[DiffEntry] = []
    for name, base in base_by_name.items():
        cand = cand_by_name.get(name)
        if cand is None:
            continue
        threshold = threshold_for(name)
        entries.append(DiffEntry(
            name=name, suite=base.suite,
            baseline_seconds=base.seconds,
            candidate_seconds=cand.seconds,
            relative=(cand.seconds - base.seconds) / base.seconds,
            threshold=(None if threshold is None
                       else threshold * threshold_scale),
            gated=comparable and threshold is not None))
    entries.sort(key=lambda entry: (-entry.relative, entry.name))

    candidate_suites = set(candidate.suites)
    missing_suites = sorted(set(baseline.suites) - candidate_suites)
    missing_hot_paths = sorted(
        name for name in base_by_name
        if threshold_for(name) is not None
        and name not in cand_by_name
        and base_by_name[name].suite in candidate_suites)
    new_records = sorted(name for name in cand_by_name
                         if name not in base_by_name)

    floor_checks: List[FloorCheck] = []
    missing_ratios: List[str] = []
    from repro.report.records import suite_of

    for stem, floor in sorted(floors_for(candidate.profile).items()):
        ratio = candidate.speedups.get(stem)
        if ratio is None:
            # Only demand the ratio when the candidate ran the suite
            # that produces it (a pop-only run owes no serve ratios).
            if suite_of(stem) in candidate_suites:
                missing_ratios.append(stem)
            continue
        floor_checks.append(FloorCheck(stem=stem, ratio=float(ratio),
                                       floor=floor))

    return DiffResult(
        baseline_profile=baseline.profile,
        candidate_profile=candidate.profile,
        seconds_comparable=comparable,
        threshold_scale=threshold_scale,
        entries=entries,
        missing_hot_paths=missing_hot_paths,
        new_records=new_records,
        floor_checks=floor_checks,
        missing_ratios=missing_ratios,
        missing_suites=missing_suites,
        require_suites=require_suites)
