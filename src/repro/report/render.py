"""Renderers for runs, diffs, and trends (text, JSON, CSV).

All three renderers are deterministic functions of their input -- no
clocks, no environment -- so the golden-file tests can pin the text
and CSV output byte-for-byte.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence

from repro.report.aggregate import (
    DiffResult,
    geomean_speedups,
    hot_path_records,
    suite_tables,
)
from repro.report.records import BenchRun
from repro.report.store import TrendPoint

FORMATS = ("text", "json", "csv")


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[str]],
                 align: Optional[str] = None) -> str:
    """Render an aligned text table; ``align[i]`` is ``<`` or ``>``."""
    if align is None:
        align = "<" + ">" * (len(headers) - 1)
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    for row in [list(headers)] + [list(row) for row in rows]:
        lines.append("  ".join(
            f"{cell:{align[index]}{widths[index]}}"
            for index, cell in enumerate(row)).rstrip())
        if row == list(headers):
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _seconds(value: float) -> str:
    return f"{value:.6f}"


def _ratio(value: float) -> str:
    return f"{value:.2f}x"


def _percent(value: float) -> str:
    return f"{value * 100:+.1f}%"


def _csv(headers: Sequence[str],
         rows: Sequence[Sequence[object]]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# repro report show


def render_run(run: BenchRun, fmt: str = "text",
               suite: Optional[str] = None) -> str:
    """Render one trajectory: per-suite tables, ratios, hot paths."""
    tables = suite_tables(run)
    if suite is not None:
        tables = {name: records for name, records in tables.items()
                  if name == suite}
    if fmt == "json":
        payload = {
            "schema": run.schema,
            "profile": run.profile,
            "context": run.context.to_dict(),
            "suites": {name: [record.to_dict() for record in records]
                       for name, records in tables.items()},
            "speedups": dict(sorted(run.speedups.items())),
            "geomean_speedups": geomean_speedups(run),
            "hot_paths": [record.name
                          for record in hot_path_records(run)],
        }
        return json.dumps(payload, indent=2) + "\n"
    if fmt == "csv":
        rows = [(record.suite, record.name, _seconds(record.seconds),
                 record.draws, record.population_size,
                 record.profile or "", record.backend or "")
                for records in tables.values() for record in records]
        return _csv(("suite", "name", "seconds", "draws",
                     "population_size", "profile", "backend"), rows)

    sections: List[str] = []
    header = [f"bench trajectory (schema {run.schema}, "
              f"profile {run.profile or 'unknown'})"]
    context = run.context.to_dict()
    if context:
        header.append("context: " + ", ".join(
            f"{key}={value}" for key, value in sorted(context.items())))
    sections.append("\n".join(header))
    for name, records in tables.items():
        rows = [(record.name, _seconds(record.seconds),
                 str(record.draws), str(record.population_size),
                 record.backend or "-") for record in records]
        sections.append(f"[{name}]\n" + format_table(
            ("record", "seconds", "draws", "population", "backend"),
            rows))
    if run.speedups:
        rows = [(stem, _ratio(ratio))
                for stem, ratio in sorted(run.speedups.items())]
        sections.append("[speedups]\n" + format_table(
            ("ratio", "value"), rows))
        rows = [(scope, _ratio(value))
                for scope, value in geomean_speedups(run).items()]
        sections.append("[geomean speedups]\n" + format_table(
            ("scope", "geomean"), rows))
    hot = hot_path_records(run)
    if hot:
        rows = [(record.name, _seconds(record.seconds), record.suite)
                for record in hot]
        sections.append("[hot paths]\n" + format_table(
            ("record", "seconds", "suite"), rows, align="<><"))
    return "\n\n".join(sections) + "\n"


# ----------------------------------------------------------------------
# repro report diff


def render_diff(diff: DiffResult, fmt: str = "text") -> str:
    """Render a diff verdict: ranked deltas, floors, missing records."""
    if fmt == "json":
        payload = {
            "ok": diff.ok,
            "baseline_profile": diff.baseline_profile,
            "candidate_profile": diff.candidate_profile,
            "seconds_comparable": diff.seconds_comparable,
            "threshold_scale": diff.threshold_scale,
            "entries": [{
                "name": entry.name, "suite": entry.suite,
                "baseline_seconds": entry.baseline_seconds,
                "candidate_seconds": entry.candidate_seconds,
                "relative": entry.relative,
                "threshold": entry.threshold,
                "gated": entry.gated,
                "regressed": entry.regressed,
            } for entry in diff.entries],
            "missing_hot_paths": diff.missing_hot_paths,
            "new_records": diff.new_records,
            "floor_checks": [{
                "stem": check.stem, "ratio": check.ratio,
                "floor": check.floor, "ok": check.ok,
            } for check in diff.floor_checks],
            "missing_ratios": diff.missing_ratios,
            "missing_suites": diff.missing_suites,
            "require_suites": diff.require_suites,
        }
        return json.dumps(payload, indent=2) + "\n"
    if fmt == "csv":
        rows = [(entry.name, entry.suite,
                 _seconds(entry.baseline_seconds),
                 _seconds(entry.candidate_seconds),
                 f"{entry.relative:+.4f}",
                 "" if entry.threshold is None
                 else f"{entry.threshold:.4f}",
                 "gated" if entry.gated else "ungated",
                 "regressed" if entry.regressed else "ok")
                for entry in diff.entries]
        return _csv(("name", "suite", "baseline_seconds",
                     "candidate_seconds", "relative", "threshold",
                     "gating", "verdict"), rows)

    lines = [
        f"bench diff: baseline profile "
        f"{diff.baseline_profile or 'unknown'} vs candidate profile "
        f"{diff.candidate_profile or 'unknown'}",
        "seconds gating: " + (
            f"on (threshold scale {diff.threshold_scale:g})"
            if diff.seconds_comparable else
            "off (profiles differ; presence and floors still gate)"),
    ]
    sections = ["\n".join(lines)]
    if diff.entries:
        rows = []
        for entry in diff.entries:
            if entry.regressed:
                verdict = "REGRESSED"
            elif entry.gated:
                verdict = "ok"
            else:
                verdict = "-"
            rows.append((entry.name, _seconds(entry.baseline_seconds),
                         _seconds(entry.candidate_seconds),
                         _percent(entry.relative),
                         "-" if entry.threshold is None
                         else _percent(entry.threshold), verdict))
        sections.append("[records, worst delta first]\n" + format_table(
            ("record", "baseline s", "candidate s", "delta",
             "threshold", "verdict"), rows, align="<>>>>>"))
    if diff.floor_checks or diff.missing_ratios:
        rows = [(check.stem, _ratio(check.ratio), _ratio(check.floor),
                 "ok" if check.ok else "BELOW FLOOR")
                for check in diff.floor_checks]
        rows.extend((stem, "-", "-", "MISSING")
                    for stem in sorted(diff.missing_ratios))
        sections.append("[speedup floors]\n" + format_table(
            ("ratio", "candidate", "floor", "verdict"), rows,
            align="<>>>"))
    if diff.missing_suites:
        gating = "gated" if diff.require_suites else "not gated"
        sections.append(f"[missing suites ({gating})]\n" + "\n".join(
            f"  {name}" for name in diff.missing_suites))
    if diff.missing_hot_paths:
        sections.append("[missing hot paths]\n" + "\n".join(
            f"  {name}" for name in diff.missing_hot_paths))
    if diff.new_records:
        sections.append("[new records]\n" + "\n".join(
            f"  {name}" for name in diff.new_records))
    verdict = "PASS" if diff.ok else "FAIL"
    counts = (f"{len(diff.regressions)} regression(s), "
              f"{len(diff.missing_hot_paths)} missing hot path(s), "
              f"{sum(1 for check in diff.floor_checks if not check.ok)}"
              f" floor failure(s)")
    if diff.missing_suites:
        counts += f", {len(diff.missing_suites)} missing suite(s)"
    sections.append(f"verdict: {verdict} ({counts})")
    return "\n\n".join(sections) + "\n"


# ----------------------------------------------------------------------
# repro report trend


def render_trend(series: Dict[str, List[TrendPoint]],
                 fmt: str = "text") -> str:
    """Render per-record series across the history store."""
    if fmt == "json":
        payload = {name: [{
            "index": point.index,
            "recorded_at": point.recorded_at,
            "git_commit": point.git_commit,
            "profile": point.profile,
            "seconds": point.seconds,
            "relative": point.relative,
        } for point in points] for name, points in series.items()}
        return json.dumps(payload, indent=2) + "\n"
    if fmt == "csv":
        rows = [(name, point.index, point.recorded_at or "",
                 point.git_commit or "", point.profile or "",
                 _seconds(point.seconds),
                 "" if point.relative is None
                 else f"{point.relative:+.4f}")
                for name, points in series.items() for point in points]
        return _csv(("name", "run", "recorded_at", "git_commit",
                     "profile", "seconds", "relative"), rows)

    if not series:
        return "no history recorded\n"
    sections = []
    for name, points in series.items():
        rows = [(str(point.index), point.recorded_at or "-",
                 point.git_commit or "-", point.profile or "-",
                 _seconds(point.seconds),
                 "-" if point.relative is None
                 else _percent(point.relative)) for point in points]
        sections.append(f"[{name}]\n" + format_table(
            ("run", "recorded", "commit", "profile", "seconds",
             "delta"), rows, align="><<<>>"))
    return "\n\n".join(sections) + "\n"
