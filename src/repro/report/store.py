"""Append-only run-history store (``.repro/bench-history.jsonl``).

Every recorded bench run becomes one compact JSON line --
``{"recorded_at": ..., **envelope}`` -- so the store is a plain JSONL
file that diffs, greps, and truncates cleanly.  Appends take the store
lock and rewrite the file atomically through :mod:`repro.ioutil`, so a
crashed writer can never leave a torn line behind and concurrent
``repro report record`` invocations serialise instead of interleaving.

:func:`trend_series` turns the history into per-record wall-clock
series (``repro report trend``): each point carries the run's commit
and profile plus the relative change against the previous sighting of
the same record.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from fnmatch import fnmatchcase
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.ioutil import FileLock, atomic_write_text
from repro.report.records import (
    BenchRun,
    ReportError,
    bench_run_from_payload,
)

#: Default history path, relative to the working directory.
DEFAULT_HISTORY = ".repro/bench-history.jsonl"


@dataclass(frozen=True)
class HistoryEntry:
    """One recorded run: its position, timestamp, and trajectory."""

    index: int
    recorded_at: Optional[str]
    run: BenchRun


@dataclass(frozen=True)
class TrendPoint:
    """One record's measurement within one history entry."""

    index: int
    recorded_at: Optional[str]
    git_commit: Optional[str]
    profile: Optional[str]
    seconds: float
    #: Relative change vs the previous sighting (None for the first).
    relative: Optional[float]


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def append_run(path: Union[str, Path], run: BenchRun,
               recorded_at: Optional[str] = None) -> int:
    """Append one run to the history store; returns its index.

    The whole file is rewritten atomically under the store lock: the
    one blessed way to extend a persisted artefact in this repo (the
    invariant linter rejects bare append-mode writes to final paths).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(
        {"recorded_at": recorded_at or _utc_now(), **run.to_dict()},
        sort_keys=True)
    with FileLock(path.with_name(path.name + ".lock")):
        existing = path.read_text() if path.exists() else ""
        if existing and not existing.endswith("\n"):
            existing += "\n"
        atomic_write_text(path, existing + line + "\n")
        return sum(1 for text in existing.splitlines() if text.strip())


def load_history(path: Union[str, Path]) -> List[HistoryEntry]:
    """Load every run recorded in the history store, oldest first."""
    path = Path(path)
    if not path.exists():
        return []
    entries: List[HistoryEntry] = []
    for number, text in enumerate(path.read_text().splitlines(), 1):
        if not text.strip():
            continue
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReportError(
                f"{path}:{number}: invalid history line: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise ReportError(f"{path}:{number}: history line must be "
                              f"an object")
        recorded_at = payload.get("recorded_at")
        run = bench_run_from_payload(payload,
                                     source=f"{path}:{number}")
        entries.append(HistoryEntry(index=len(entries),
                                    recorded_at=recorded_at, run=run))
    return entries


def trend_series(entries: Sequence[HistoryEntry],
                 names: Optional[Sequence[str]] = None,
                 ) -> Dict[str, List[TrendPoint]]:
    """Per-record wall-clock series across the history.

    Args:
        names: optional glob patterns; only records matching at least
            one are included (default: every record ever seen).
    """
    series: Dict[str, List[TrendPoint]] = {}
    for entry in entries:
        for record in entry.run.records:
            if names is not None and not any(
                    fnmatchcase(record.name, pattern)
                    for pattern in names):
                continue
            points = series.setdefault(record.name, [])
            previous = points[-1].seconds if points else None
            relative = (None if previous is None
                        else (record.seconds - previous) / previous)
            points.append(TrendPoint(
                index=entry.index,
                recorded_at=entry.recorded_at,
                git_commit=entry.run.context.git_commit,
                profile=record.profile,
                seconds=record.seconds,
                relative=relative))
    return dict(sorted(series.items()))
