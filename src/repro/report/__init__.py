"""Result records, regression gating, and trend reports over the
bench trajectory (``repro report``).

The subsystem splits into four layers:

- :mod:`repro.report.records` -- the versioned run-record schema and
  typed load/validate of ``BENCH_*.json`` trajectories;
- :mod:`repro.report.aggregate` -- suite tables, geomean speedups,
  the :data:`THRESHOLDS` / :data:`SPEEDUP_FLOORS` single source of
  truth, and :func:`diff_runs` (the regression gate);
- :mod:`repro.report.store` -- the append-only JSONL run-history
  store behind ``repro report record`` / ``trend``;
- :mod:`repro.report.render` -- deterministic text/JSON/CSV renderers.
"""

from repro.report.aggregate import (
    SMOKE_SPEEDUP_FLOORS,
    SPEEDUP_FLOORS,
    THRESHOLDS,
    TRAJECTORY_RECORDS,
    DiffEntry,
    DiffResult,
    FloorCheck,
    diff_runs,
    floors_for,
    geomean,
    geomean_speedups,
    hot_path_names,
    hot_path_records,
    suite_tables,
    threshold_for,
)
from repro.report.records import (
    SCHEMA_VERSION,
    BenchRun,
    MachineContext,
    ReportError,
    RunRecord,
    bench_run,
    bench_run_from_payload,
    load_bench,
    machine_context,
    save_bench,
    suite_of,
)
from repro.report.render import (
    FORMATS,
    format_table,
    render_diff,
    render_run,
    render_trend,
)
from repro.report.store import (
    DEFAULT_HISTORY,
    HistoryEntry,
    TrendPoint,
    append_run,
    load_history,
    trend_series,
)

__all__ = [
    "SCHEMA_VERSION",
    "SMOKE_SPEEDUP_FLOORS",
    "SPEEDUP_FLOORS",
    "THRESHOLDS",
    "TRAJECTORY_RECORDS",
    "DEFAULT_HISTORY",
    "FORMATS",
    "BenchRun",
    "DiffEntry",
    "DiffResult",
    "FloorCheck",
    "HistoryEntry",
    "MachineContext",
    "ReportError",
    "RunRecord",
    "TrendPoint",
    "append_run",
    "bench_run",
    "bench_run_from_payload",
    "diff_runs",
    "floors_for",
    "format_table",
    "geomean",
    "geomean_speedups",
    "hot_path_names",
    "hot_path_records",
    "load_bench",
    "load_history",
    "machine_context",
    "render_diff",
    "render_run",
    "render_trend",
    "save_bench",
    "suite_of",
    "suite_tables",
    "threshold_for",
    "trend_series",
]
