"""The bench result-record schema: typed load/validate of trajectories.

``repro bench`` has always serialised a flat list of record dicts into
``BENCH_analytics.json``; this module gives those records a *versioned*
schema and a typed in-memory model so the report/regression layer can
consume any trajectory ever written:

- **schema 1** (historical): a bare JSON list of records --
  ``{"name", "seconds", "draws", "population_size"}`` plus per-suite
  extras (``backend``, ``mips``, counters).  Suite and profile are
  implicit; speedup ratios are re-derived by
  :func:`repro.perf.speedups`.
- **schema 2** (current, :data:`SCHEMA_VERSION`): an envelope
  ``{"schema", "context", "profile", "speedups", "records"}``.  Every
  record carries its ``suite`` and ``profile`` at write time, the
  envelope captures the machine context the run was measured on (CPU
  count, Python/NumPy versions, ``kernels_available``, git commit) and
  the derived speedup ratios, so a trajectory is self-describing.

:func:`load_bench` accepts both shapes and always returns a
:class:`BenchRun`; :func:`save_bench` writes the current schema
atomically via :mod:`repro.ioutil`.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.ioutil import atomic_write_text

#: The envelope schema written by :func:`save_bench` / ``repro bench``.
SCHEMA_VERSION = 2

#: Record-name prefix -> bench suite (the five ``repro bench`` suites).
#: First match wins; names outside every suite map to ``"other"``.
SUITE_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("delta-", "analytics"),
    ("estimator-", "analytics"),
    ("sim-", "sim"),
    ("pop-", "pop"),
    ("e2e-", "e2e"),
    ("serve-", "serve"),
)

#: Keys every record must carry (schema 1 and 2 alike).
CORE_KEYS = ("name", "seconds", "draws", "population_size")

#: Optional typed keys; everything else rides along as ``extras``.
_OPTIONAL_KEYS = ("suite", "profile", "backend", "mips")


class ReportError(ValueError):
    """A trajectory file or record failed to load or validate."""


def suite_of(name: str) -> str:
    """The bench suite a record name belongs to (by prefix)."""
    for prefix, suite in SUITE_PREFIXES:
        if name.startswith(prefix):
            return suite
    return "other"


# ----------------------------------------------------------------------
# Machine context


@dataclass(frozen=True)
class MachineContext:
    """Where a trajectory was measured (envelope-level provenance).

    Every field is optional: schema-1 files have no context at all, and
    a context gathered on a host without git simply omits the commit.
    """

    cpu_count: Optional[int] = None
    python: Optional[str] = None
    numpy: Optional[str] = None
    kernels_available: Optional[bool] = None
    git_commit: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {}
        for key in ("cpu_count", "python", "numpy", "kernels_available",
                    "git_commit"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MachineContext":
        if not isinstance(payload, Mapping):
            raise ReportError(f"context must be an object, got "
                              f"{type(payload).__name__}")
        known = {key: payload.get(key) for key in (
            "cpu_count", "python", "numpy", "kernels_available",
            "git_commit")}
        return cls(**known)           # type: ignore[arg-type]


def _git_commit() -> Optional[str]:
    """The current short commit hash, or None outside a git checkout.

    Resolved against the checkout this module lives in, not the
    process CWD -- ``repro bench`` run from another directory must
    still record the repro commit, not an unrelated repo's.
    """
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    commit = output.stdout.strip()
    return commit if output.returncode == 0 and commit else None


def machine_context() -> MachineContext:
    """Gather the live machine context for a fresh bench run."""
    import numpy

    from repro.core.sampling import _kernels

    return MachineContext(
        cpu_count=os.cpu_count(),
        python=platform.python_version(),
        numpy=numpy.__version__,
        kernels_available=_kernels.HAVE_NUMBA,
        git_commit=_git_commit())


# ----------------------------------------------------------------------
# Records


@dataclass(frozen=True)
class RunRecord:
    """One validated bench measurement.

    ``extras`` holds every key the harness recorded beyond the typed
    ones (scheduler counters, LRU hit rates, kernel flags), as a sorted
    tuple of items so records stay hashable and order-canonical.
    """

    name: str
    seconds: float
    draws: int
    population_size: int
    suite: str
    profile: Optional[str] = None
    backend: Optional[str] = None
    mips: Optional[float] = None
    extras: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def from_dict(cls, payload: Mapping[str, object],
                  profile: Optional[str] = None) -> "RunRecord":
        """Validate one record dict (either schema's shape).

        Args:
            payload: the raw record.
            profile: default profile for schema-1 records (their dicts
                carry none); a ``"profile"`` key in the payload wins.
        """
        if not isinstance(payload, Mapping):
            raise ReportError(f"record must be an object, got "
                              f"{type(payload).__name__}")
        missing = [key for key in CORE_KEYS if key not in payload]
        if missing:
            raise ReportError(
                f"record {payload.get('name', '?')!r} is missing "
                f"{', '.join(missing)}")
        name = payload["name"]
        if not isinstance(name, str) or not name:
            raise ReportError(f"record name must be a non-empty string, "
                              f"got {name!r}")
        seconds = payload["seconds"]
        if isinstance(seconds, bool) or \
                not isinstance(seconds, (int, float)) or \
                not math.isfinite(seconds) or seconds <= 0:
            raise ReportError(f"record {name!r}: seconds must be a finite "
                              f"positive number, got {seconds!r}")
        draws = payload["draws"]
        population = payload["population_size"]
        for label, value in (("draws", draws),
                             ("population_size", population)):
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < 0:
                raise ReportError(f"record {name!r}: {label} must be a "
                                  f"non-negative integer, got {value!r}")
        suite = payload.get("suite")
        if suite is None:
            suite = suite_of(name)
        elif not isinstance(suite, str):
            raise ReportError(f"record {name!r}: suite must be a string")
        record_profile = payload.get("profile", profile)
        if record_profile is not None and \
                not isinstance(record_profile, str):
            raise ReportError(f"record {name!r}: profile must be a string")
        backend = payload.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise ReportError(f"record {name!r}: backend must be a string")
        mips = payload.get("mips")
        if mips is not None and (isinstance(mips, bool)
                                 or not isinstance(mips, (int, float))):
            raise ReportError(f"record {name!r}: mips must be a number")
        extras = tuple(sorted(
            (key, value) for key, value in payload.items()
            if key not in CORE_KEYS and key not in _OPTIONAL_KEYS))
        return cls(name=name, seconds=float(seconds), draws=draws,
                   population_size=population, suite=suite,
                   profile=record_profile, backend=backend,
                   mips=None if mips is None else float(mips),
                   extras=extras)

    def extra(self, key: str, default: object = None) -> object:
        for name, value in self.extras:
            if name == key:
                return value
        return default

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "seconds": self.seconds,
            "draws": self.draws,
            "population_size": self.population_size,
            "suite": self.suite,
        }
        if self.profile is not None:
            payload["profile"] = self.profile
        if self.backend is not None:
            payload["backend"] = self.backend
        if self.mips is not None:
            payload["mips"] = self.mips
        payload.update(dict(self.extras))
        return payload


@dataclass
class BenchRun:
    """One loaded (or freshly measured) trajectory."""

    records: List[RunRecord]
    context: MachineContext = field(default_factory=MachineContext)
    speedups: Dict[str, float] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION
    profile: Optional[str] = None

    @property
    def by_name(self) -> Dict[str, RunRecord]:
        return {record.name: record for record in self.records}

    @property
    def suites(self) -> List[str]:
        """Suites present, in first-appearance order."""
        ordered: Dict[str, None] = {}
        for record in self.records:
            ordered.setdefault(record.suite, None)
        return list(ordered)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "profile": self.profile,
            "context": self.context.to_dict(),
            "speedups": self.speedups,
            "records": [record.to_dict() for record in self.records],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


def _derive_speedups(records: Sequence[RunRecord]) -> Dict[str, float]:
    from repro.perf import speedups

    return speedups([record.to_dict() for record in records])


def _require_unique_names(records: Sequence[RunRecord],
                          source: str = "run") -> None:
    """Reject duplicate record names (``BenchRun.by_name`` would
    otherwise silently keep only the last occurrence)."""
    names = [record.name for record in records]
    if len(names) != len(set(names)):
        duplicates = sorted({name for name in names
                             if names.count(name) > 1})
        raise ReportError(f"{source}: duplicate record names: "
                          f"{', '.join(duplicates)}")


def bench_run(records: Sequence[Mapping[str, object]],
              profile: Optional[str] = None,
              context: Optional[MachineContext] = None) -> BenchRun:
    """Package live harness output as a current-schema :class:`BenchRun`.

    Tags every record with its suite and the run's profile, derives the
    speedup ratios once, and (unless given one) gathers the live
    machine context -- this is what ``repro bench`` persists.
    """
    typed = [RunRecord.from_dict(record, profile=profile)
             for record in records]
    _require_unique_names(typed)
    return BenchRun(records=typed,
                    context=machine_context() if context is None
                    else context,
                    speedups=_derive_speedups(typed),
                    profile=profile)


def bench_run_from_payload(payload: object,
                           source: str = "<payload>") -> BenchRun:
    """Typed load of either schema's JSON payload."""
    if isinstance(payload, list):
        records = [RunRecord.from_dict(record) for record in payload]
        _require_unique_names(records, source=source)
        return BenchRun(records=records, schema=1,
                        speedups=_derive_speedups(records))
    if isinstance(payload, Mapping):
        schema = payload.get("schema")
        if not isinstance(schema, int) or not 1 <= schema <= SCHEMA_VERSION:
            raise ReportError(
                f"{source}: unsupported schema {schema!r} (this build "
                f"reads 1..{SCHEMA_VERSION})")
        raw_records = payload.get("records")
        if not isinstance(raw_records, list):
            raise ReportError(f"{source}: envelope has no record list")
        profile = payload.get("profile")
        if profile is not None and not isinstance(profile, str):
            raise ReportError(f"{source}: profile must be a string")
        records = [RunRecord.from_dict(record, profile=profile)
                   for record in raw_records]
        _require_unique_names(records, source=source)
        stored = payload.get("speedups")
        if stored is not None and not isinstance(stored, Mapping):
            raise ReportError(f"{source}: speedups must be an object")
        return BenchRun(
            records=records,
            context=MachineContext.from_dict(payload.get("context", {})),
            speedups=(dict(stored) if stored
                      else _derive_speedups(records)),
            schema=schema, profile=profile)
    raise ReportError(f"{source}: expected a record list or an envelope, "
                      f"got {type(payload).__name__}")


def load_bench(path: Union[str, Path]) -> BenchRun:
    """Load and validate a trajectory file (either schema)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ReportError(f"cannot read {path}: {error}") from error
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ReportError(f"{path} is not valid JSON: {error}") from error
    return bench_run_from_payload(payload, source=str(path))


def save_bench(path: Union[str, Path], run: BenchRun) -> None:
    """Atomically write a trajectory in the current schema."""
    atomic_write_text(Path(path), run.to_json() + "\n")
